//! The preference-aware resource balancer (paper Algorithm 2, §VI).
//!
//! The predictor cannot foresee contention on unmanaged resources or OS
//! interference, so a configuration it deems feasible can still violate
//! QoS. The balancer compensates with *binary harvest*: take half of the
//! BE application's holding of whichever resource type costs the least
//! throughput (cores, cache ways, or "power" — i.e. shifting frequency
//! headroom from BE to LS, Fig. 8), watch the next interval, revert half
//! if the harvest overshot, and halve the granularity each round until
//! the tail latency settles into the slack band.

use crate::predictor::PerfPowerPredictor;
use sturgeon_simnode::{NodeSpec, PairConfig};
use sturgeon_workloads::env::Observation;

/// Slack band shared with the top-level controller (paper defaults:
/// α = 10%, β = 20%).
#[derive(Debug, Clone, Copy)]
pub struct BalancerParams {
    /// Lower slack bound: below this the LS service needs help.
    pub alpha: f64,
    /// Upper slack bound: above this resources were over-harvested.
    pub beta: f64,
    /// Relative guard band subtracted from the budget before power
    /// checks, mirroring [`crate::search::SearchParams::power_guard`].
    pub power_guard: f64,
}

impl Default for BalancerParams {
    fn default() -> Self {
        Self {
            alpha: 0.10,
            beta: 0.20,
            power_guard: 0.02,
        }
    }
}

/// The three harvest targets of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum HarvestTarget {
    /// Move cores from the BE partition to the LS partition.
    Cores,
    /// Move LLC ways from the BE partition to the LS partition.
    Cache,
    /// Move power: lower the BE frequency, raise the LS frequency.
    Power,
}

impl HarvestTarget {
    /// All three targets.
    pub fn all() -> [HarvestTarget; 3] {
        [
            HarvestTarget::Cores,
            HarvestTarget::Cache,
            HarvestTarget::Power,
        ]
    }
}

/// One past harvest, kept so an overshoot can be partially reverted.
#[derive(Debug, Clone, Copy)]
struct PendingHarvest {
    target: HarvestTarget,
    /// How many units (cores / ways / levels) were moved.
    amount: u32,
}

/// The externally visible record of one balancer action, consumed by the
/// decision trace (`TraceEvent::BalancerStep`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum BalancerAction {
    /// Moved `amount` units of `target` from the BE partition to the LS
    /// partition (Algorithm 2's binary harvest).
    Harvest {
        /// The resource type that moved.
        target: HarvestTarget,
        /// Units (cores / ways / frequency levels) moved.
        amount: u32,
    },
    /// Returned `amount` units of `target` to the BE partition after an
    /// overshoot (Algorithm 2 lines 11–14).
    Revert {
        /// The resource type that moved back.
        target: HarvestTarget,
        /// Units moved back.
        amount: u32,
    },
}

/// Algorithm 2 as a per-interval state machine. The controller calls
/// [`ResourceBalancer::adjust`] once per monitoring interval; the balancer
/// returns a new configuration when it decides to act.
#[derive(Debug, Clone)]
pub struct ResourceBalancer {
    params: BalancerParams,
    /// Current harvest granularity as a fraction of the BE holding
    /// (Algorithm 2 line 2 initializes it to 0.5).
    granularity: f64,
    pending: Option<PendingHarvest>,
    /// Targets whose last harvest failed to restore the slack; skipped
    /// until every target has been tried (feedback-driven retry).
    unhelpful: Vec<HarvestTarget>,
    harvests: u64,
    reverts: u64,
    /// Full feedback rounds burned without settling: incremented each time
    /// every harvest target has been tried once and found unhelpful.
    retry_rounds: u64,
    /// Consecutive violating intervals in which no harvest was possible
    /// (every candidate move was illegal or over budget). Cleared by any
    /// successful action or by [`ResourceBalancer::reset`].
    failed_adjusts: u32,
    /// What the most recent [`ResourceBalancer::adjust`] call did, for
    /// the decision trace. `None` when it held position.
    last_action: Option<BalancerAction>,
}

/// Consecutive no-move violations after which the balancer declares
/// itself out of options (see [`ResourceBalancer::is_exhausted`]).
const EXHAUSTION_THRESHOLD: u32 = 3;

impl ResourceBalancer {
    /// A balancer with the given slack band.
    pub fn new(params: BalancerParams) -> Self {
        Self {
            params,
            granularity: 0.5,
            pending: None,
            unhelpful: Vec::new(),
            harvests: 0,
            reverts: 0,
            retry_rounds: 0,
            failed_adjusts: 0,
            last_action: None,
        }
    }

    /// Forgets history and restores the initial granularity; called by
    /// the controller whenever the predictor installs a fresh
    /// configuration. The lifetime effectiveness counters
    /// ([`harvest_count`](Self::harvest_count),
    /// [`revert_count`](Self::revert_count),
    /// [`retry_rounds`](Self::retry_rounds)) survive resets — they
    /// account for the whole run, not one configuration epoch — while the
    /// per-epoch exhaustion state clears with the rest of the history.
    pub fn reset(&mut self) {
        self.granularity = 0.5;
        self.pending = None;
        self.unhelpful.clear();
        self.failed_adjusts = 0;
        self.last_action = None;
    }

    /// What the most recent [`ResourceBalancer::adjust`] call did;
    /// `None` when it held position (or never ran).
    pub fn last_action(&self) -> Option<BalancerAction> {
        self.last_action
    }

    /// Total harvest actions taken (for the effectiveness analysis).
    pub fn harvest_count(&self) -> u64 {
        self.harvests
    }

    /// Total (partial) reverts taken.
    pub fn revert_count(&self) -> u64 {
        self.reverts
    }

    /// Full retry rounds in which every harvest target was tried and
    /// found unhelpful before starting over.
    pub fn retry_rounds(&self) -> u64 {
        self.retry_rounds
    }

    /// True when the balancer has faced several consecutive violating
    /// intervals without a single legal, budget-respecting move to make —
    /// the controller's cue to stop fine-tuning and fall back.
    pub fn is_exhausted(&self) -> bool {
        self.failed_adjusts >= EXHAUSTION_THRESHOLD
    }

    /// Applies one harvest of `amount` units of `target`, if legal.
    fn harvested(
        spec: &NodeSpec,
        cfg: &PairConfig,
        target: HarvestTarget,
        amount: u32,
    ) -> Option<PairConfig> {
        if amount == 0 {
            return None;
        }
        let mut next = *cfg;
        match target {
            HarvestTarget::Cores => {
                if cfg.be.cores <= amount {
                    return None; // BE partition must stay non-empty
                }
                next.be.cores -= amount;
                next.ls.cores += amount;
            }
            HarvestTarget::Cache => {
                if cfg.be.llc_ways <= amount {
                    return None;
                }
                next.be.llc_ways -= amount;
                next.ls.llc_ways += amount;
            }
            HarvestTarget::Power => {
                let amount = amount as usize;
                if cfg.be.freq_level < amount {
                    return None;
                }
                next.be.freq_level -= amount;
                next.ls.freq_level = (cfg.ls.freq_level + amount).min(spec.max_freq_level());
                if next == *cfg {
                    return None; // nothing actually moved
                }
            }
        }
        next.validate(spec).ok()?;
        Some(next)
    }

    /// The inverse move, used for partial reverts.
    fn reverted(
        spec: &NodeSpec,
        cfg: &PairConfig,
        target: HarvestTarget,
        amount: u32,
    ) -> Option<PairConfig> {
        if amount == 0 {
            return None;
        }
        let mut next = *cfg;
        match target {
            HarvestTarget::Cores => {
                if cfg.ls.cores <= amount {
                    return None;
                }
                next.ls.cores -= amount;
                next.be.cores += amount;
            }
            HarvestTarget::Cache => {
                if cfg.ls.llc_ways <= amount {
                    return None;
                }
                next.ls.llc_ways -= amount;
                next.be.llc_ways += amount;
            }
            HarvestTarget::Power => {
                let amount = amount as usize;
                next.be.freq_level = (cfg.be.freq_level + amount).min(spec.max_freq_level());
                next.ls.freq_level = cfg.ls.freq_level.saturating_sub(amount);
                if next == *cfg {
                    return None;
                }
            }
        }
        next.validate(spec).ok()?;
        Some(next)
    }

    /// Units to harvest for a target at the current granularity
    /// (Algorithm 2: half of what the BE application owns, then halving).
    fn amount_for(&self, cfg: &PairConfig, target: HarvestTarget) -> u32 {
        let holding = match target {
            HarvestTarget::Cores => cfg.be.cores,
            HarvestTarget::Cache => cfg.be.llc_ways,
            HarvestTarget::Power => cfg.be.freq_level as u32,
        };
        ((holding as f64 * self.granularity).round() as u32).max(1)
    }

    /// One Algorithm 2 step. Returns `Some(new_config)` when the balancer
    /// acts, `None` when the slack is healthy (in `[α, β]`) and nothing
    /// needs fine-tuning.
    pub fn adjust(
        &mut self,
        predictor: &PerfPowerPredictor,
        spec: &NodeSpec,
        budget_w: f64,
        obs: &Observation,
        qos_target_ms: f64,
        current: PairConfig,
    ) -> Option<PairConfig> {
        let slack = (qos_target_ms - obs.p95_ms) / qos_target_ms;
        self.last_action = None;

        if slack >= self.params.alpha && slack <= self.params.beta {
            // Settled: forget pending state, keep granularity for the next
            // disturbance within this configuration epoch.
            self.pending = None;
            self.unhelpful.clear();
            self.failed_adjusts = 0;
            return None;
        }

        if slack > self.params.beta {
            // Excessive harvest (Algorithm 2 lines 11–14): give half of
            // the last harvest back, provided power stays within budget.
            let pending = self.pending.take()?;
            let back = (pending.amount / 2).max(1);
            let next = Self::reverted(spec, &current, pending.target, back)?;
            // Power check at a drifted load against the guarded budget,
            // mirroring the search's headroom: the load can keep rising
            // before the next decision.
            if predictor.total_power_w(&next, spec, obs.qps * 1.08)
                > budget_w * (1.0 - self.params.power_guard)
            {
                return None;
            }
            self.granularity = (self.granularity * 0.5).max(0.05);
            self.reverts += 1;
            self.failed_adjusts = 0;
            self.last_action = Some(BalancerAction::Revert {
                target: pending.target,
                amount: back,
            });
            return Some(next);
        }

        // slack < α: the previous harvest (if any) failed to restore the
        // slack — feedback says that resource type is not what the LS
        // service is starving for, so deprioritize it.
        if let Some(p) = self.pending.take() {
            if !self.unhelpful.contains(&p.target) {
                self.unhelpful.push(p.target);
            }
            if self.unhelpful.len() >= HarvestTarget::all().len() {
                // Everything tried once: start a fresh round.
                self.unhelpful.clear();
                self.retry_rounds += 1;
            }
        }

        // Harvest the not-yet-unhelpful target with the least predicted
        // throughput loss that does not overload the budget
        // (Algorithm 2 lines 4–9).
        let mut best: Option<(PairConfig, f64, HarvestTarget, u32)> = None;
        for target in HarvestTarget::all() {
            if self.unhelpful.contains(&target) {
                continue;
            }
            let amount = self.amount_for(&current, target);
            let Some(next) = Self::harvested(spec, &current, target, amount) else {
                continue;
            };
            if predictor.total_power_w(&next, spec, obs.qps * 1.08)
                > budget_w * (1.0 - self.params.power_guard)
            {
                continue;
            }
            let throughput = predictor.be_throughput(
                next.be.cores,
                spec.freq_ghz(next.be.freq_level),
                next.be.llc_ways,
            );
            if best.as_ref().is_none_or(|(_, t, _, _)| throughput > *t) {
                best = Some((next, throughput, target, amount));
            }
        }
        let Some((next, _, target, amount)) = best else {
            // Violation with no legal move: remember the dead end so the
            // controller can tell a momentary corner from true exhaustion.
            self.failed_adjusts = self.failed_adjusts.saturating_add(1);
            return None;
        };
        self.pending = Some(PendingHarvest { target, amount });
        self.granularity = (self.granularity * 0.5).max(0.05);
        self.harvests += 1;
        self.failed_adjusts = 0;
        self.last_action = Some(BalancerAction::Harvest { target, amount });
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{PerfPowerPredictor, PredictorConfig};
    use crate::profiler::{Profiler, ProfilerConfig};
    use sturgeon_simnode::{Allocation, NodeSpec, PowerModel};
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::env::CoLocationEnv;
    use sturgeon_workloads::interference::InterferenceParams;

    fn setup() -> (CoLocationEnv, PerfPowerPredictor) {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        );
        let d = Profiler::new(
            &env,
            ProfilerConfig {
                ls_samples_per_load: 80,
                ls_load_fractions: vec![0.2, 0.4, 0.6, 0.8],
                be_samples: 300,
                seed: 9,
            },
        )
        .collect()
        .unwrap();
        let p = PerfPowerPredictor::train(
            &d,
            PredictorConfig::default(),
            env.static_power_w(),
            env.be().params.input_level as f64,
            env.ls().params.qos_target_ms,
        )
        .unwrap();
        (env, p)
    }

    fn obs_with(p95_ms: f64, qps: f64) -> Observation {
        Observation {
            t_s: 1.0,
            qps,
            p95_ms,
            in_target_fraction: 0.9,
            ls_utilization: 0.8,
            power_w: 70.0,
            be_throughput_norm: 0.5,
            be_ipc: 0.5,
            interference: 1.0,
        }
    }

    fn cfg(c1: u32, f1: usize, l1: u32) -> PairConfig {
        PairConfig::new(
            Allocation::new(c1, f1, l1),
            Allocation::new(20 - c1, 9, 20 - l1),
        )
    }

    #[test]
    fn healthy_slack_means_no_action() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        // target 10ms, p95 8.7ms → slack 13%, inside [10%, 20%].
        let out = b.adjust(
            &p,
            env.spec(),
            env.budget_w(),
            &obs_with(8.7, 12_000.0),
            10.0,
            cfg(6, 7, 8),
        );
        assert!(out.is_none());
    }

    #[test]
    fn violation_triggers_harvest_towards_ls() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        let before = cfg(6, 7, 8);
        let out = b
            .adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(11.5, 12_000.0),
                10.0,
                before,
            )
            .expect("balancer must act on a violation");
        // The LS partition must have gained *something*.
        let gained_cores = out.ls.cores > before.ls.cores;
        let gained_ways = out.ls.llc_ways > before.ls.llc_ways;
        let gained_freq = out.ls.freq_level > before.ls.freq_level;
        assert!(gained_cores || gained_ways || gained_freq);
        assert!(out.validate(env.spec()).is_ok());
        assert_eq!(b.harvest_count(), 1);
    }

    #[test]
    fn harvest_respects_power_budget() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        let before = cfg(6, 7, 8);
        let obs = obs_with(11.5, 12_000.0);
        if let Some(out) = b.adjust(&p, env.spec(), env.budget_w(), &obs, 10.0, before) {
            assert!(
                p.total_power_w(&out, env.spec(), obs.qps) <= env.budget_w(),
                "balancer produced an overloaded config"
            );
        }
    }

    #[test]
    fn excessive_harvest_is_partially_reverted() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        let before = cfg(6, 7, 8);
        // First, a violation provokes a harvest.
        let harvested = b
            .adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(11.5, 12_000.0),
                10.0,
                before,
            )
            .unwrap();
        // Then the latency collapses (slack ≫ β) → partial revert.
        let reverted = b.adjust(
            &p,
            env.spec(),
            env.budget_w(),
            &obs_with(2.0, 12_000.0),
            10.0,
            harvested,
        );
        if let Some(r) = reverted {
            assert!(r.validate(env.spec()).is_ok());
            // The BE partition got something back.
            let be_gained = r.be.cores > harvested.be.cores
                || r.be.llc_ways > harvested.be.llc_ways
                || r.be.freq_level > harvested.be.freq_level;
            assert!(be_gained);
            assert_eq!(b.revert_count(), 1);
        }
    }

    #[test]
    fn granularity_halves_per_action() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        let c0 = cfg(4, 5, 6);
        let first = b
            .adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(12.0, 12_000.0),
                10.0,
                c0,
            )
            .unwrap();
        let second = b
            .adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(12.0, 12_000.0),
                10.0,
                first,
            )
            .unwrap();
        // The second harvest moves at most as many units as the first
        // (halved granularity on a smaller holding).
        let first_moved = (first.ls.cores - c0.ls.cores)
            + (first.ls.llc_ways - c0.ls.llc_ways)
            + (first.ls.freq_level - c0.ls.freq_level) as u32;
        let second_moved = (second.ls.cores - first.ls.cores)
            + (second.ls.llc_ways - first.ls.llc_ways)
            + (second.ls.freq_level.saturating_sub(first.ls.freq_level)) as u32;
        assert!(
            second_moved <= first_moved,
            "{second_moved} > {first_moved}"
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        let _ = b.adjust(
            &p,
            env.spec(),
            env.budget_w(),
            &obs_with(12.0, 12_000.0),
            10.0,
            cfg(4, 5, 6),
        );
        b.reset();
        assert!((b.granularity - 0.5).abs() < 1e-12);
        assert!(b.pending.is_none());
    }

    #[test]
    fn reset_preserves_lifetime_counters_and_clears_epoch_state() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        // A harvest then a revert, so both lifetime counters are nonzero.
        let harvested = b
            .adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(12.0, 12_000.0),
                10.0,
                cfg(6, 7, 8),
            )
            .unwrap();
        let _ = b.adjust(
            &p,
            env.spec(),
            env.budget_w(),
            &obs_with(2.0, 12_000.0),
            10.0,
            harvested,
        );
        // Manufacture an exhausted epoch: a starved BE partition leaves no
        // legal harvest, so violating intervals pile up failed adjusts.
        let tiny = PairConfig::new(Allocation::new(19, 9, 19), Allocation::new(1, 0, 1));
        for _ in 0..3 {
            let out = b.adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(12.0, 48_000.0),
                10.0,
                tiny,
            );
            assert!(out.is_none());
        }
        assert!(b.is_exhausted());
        let harvests = b.harvest_count();
        let reverts = b.revert_count();
        let rounds = b.retry_rounds();
        assert!(harvests >= 1);

        b.reset();
        // Lifetime effectiveness counters survive the reset…
        assert_eq!(b.harvest_count(), harvests);
        assert_eq!(b.revert_count(), reverts);
        assert_eq!(b.retry_rounds(), rounds);
        // …while the per-epoch state (incl. exhaustion) clears.
        assert!(!b.is_exhausted());
        assert!((b.granularity - 0.5).abs() < 1e-12);
        assert!(b.pending.is_none());
        assert!(b.unhelpful.is_empty());
    }

    #[test]
    fn exhaustion_requires_consecutive_failures() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        let tiny = PairConfig::new(Allocation::new(19, 9, 19), Allocation::new(1, 0, 1));
        for _ in 0..2 {
            let _ = b.adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(12.0, 48_000.0),
                10.0,
                tiny,
            );
        }
        assert!(!b.is_exhausted());
        // A successful harvest from a roomier config breaks the streak.
        let _ = b
            .adjust(
                &p,
                env.spec(),
                env.budget_w(),
                &obs_with(12.0, 12_000.0),
                10.0,
                cfg(6, 7, 8),
            )
            .unwrap();
        assert!(!b.is_exhausted());
        assert_eq!(b.failed_adjusts, 0);
    }

    #[test]
    fn never_empties_the_be_partition() {
        let (env, p) = setup();
        let mut b = ResourceBalancer::new(BalancerParams::default());
        // Start with a BE partition already at the minimum.
        let tiny = PairConfig::new(Allocation::new(19, 9, 19), Allocation::new(1, 0, 1));
        let out = b.adjust(
            &p,
            env.spec(),
            env.budget_w(),
            &obs_with(12.0, 48_000.0),
            10.0,
            tiny,
        );
        if let Some(o) = out {
            assert!(o.be.cores >= 1);
            assert!(o.be.llc_ways >= 1);
        }
    }
}
