//! BE placement: which best-effort application should co-locate with a
//! given LS service right now?
//!
//! The paper's cluster scheduler (Fig. 4) dispatches queries; something
//! must also decide which batch job lands on which node. Sturgeon's
//! predictor answers that for free: for every candidate BE application,
//! run the §V-B search at the node's current load and compare the
//! predicted normalized throughput of the best feasible configuration.
//! The candidate recovering the largest fraction of a dedicated machine
//! wins — preference-awareness applied at placement time rather than
//! after the fact.

use crate::experiment::{ColocationPair, ExperimentSetup};
use crate::predictor::PerfPowerPredictor;
use crate::search::{ConfigSearch, SearchParams};
use sturgeon_simnode::{NodeSpec, PairConfig};
use sturgeon_workloads::catalog::{BeAppId, LsServiceId};

/// The outcome of evaluating one candidate at one load.
#[derive(Debug, Clone)]
pub struct PlacementDecision {
    /// The candidate BE application.
    pub be: BeAppId,
    /// Best feasible configuration found for it (`None` when the search
    /// could not find any feasible co-location at this load).
    pub config: Option<PairConfig>,
    /// Predicted normalized throughput of that configuration.
    pub predicted_throughput: f64,
}

/// A placement engine for one LS service over a fixed candidate set.
///
/// Construction runs the offline phase (profiling + training) once per
/// candidate; [`BePlacer::rank`] and [`BePlacer::choose`] are then cheap
/// enough to run at scheduling time.
pub struct BePlacer {
    spec: NodeSpec,
    budget_w: f64,
    ls: LsServiceId,
    candidates: Vec<(BeAppId, PerfPowerPredictor)>,
}

impl std::fmt::Debug for BePlacer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BePlacer")
            .field("ls", &self.ls.name())
            .field("budget_w", &self.budget_w)
            .field("candidates", &self.candidates.len())
            .finish()
    }
}

impl BePlacer {
    /// Trains a predictor per candidate pair (offline phase).
    pub fn new(ls: LsServiceId, candidates: &[BeAppId], seed: u64) -> Self {
        assert!(!candidates.is_empty(), "at least one candidate");
        let mut trained = Vec::with_capacity(candidates.len());
        let mut spec = NodeSpec::xeon_e5_2630_v4();
        let mut budget = 0.0;
        for &be in candidates {
            let setup = ExperimentSetup::new(ColocationPair::new(ls, be), seed);
            spec = setup.spec().clone();
            budget = setup.budget_w();
            trained.push((be, setup.train_default_predictor()));
        }
        Self {
            spec,
            budget_w: budget,
            ls,
            candidates: trained,
        }
    }

    /// The LS service this placer serves.
    pub fn ls(&self) -> LsServiceId {
        self.ls
    }

    /// Candidate count.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Evaluates every candidate at the given LS load, best first.
    pub fn rank(&self, qps: f64) -> Vec<PlacementDecision> {
        let mut out: Vec<PlacementDecision> = self
            .candidates
            .iter()
            .map(|(be, predictor)| {
                let search = ConfigSearch::new(
                    predictor,
                    self.spec.clone(),
                    self.budget_w,
                    SearchParams::default(),
                );
                let outcome = search.best_config(qps);
                PlacementDecision {
                    be: *be,
                    config: outcome.best,
                    predicted_throughput: outcome.predicted_throughput,
                }
            })
            .collect();
        out.sort_by(|a, b| b.predicted_throughput.total_cmp(&a.predicted_throughput));
        out
    }

    /// The single best candidate at the given load (`None` when no
    /// candidate has any feasible configuration).
    pub fn choose(&self, qps: f64) -> Option<PlacementDecision> {
        self.rank(qps).into_iter().find(|d| d.config.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placer() -> BePlacer {
        BePlacer::new(
            LsServiceId::Memcached,
            &[
                BeAppId::Ferret,
                BeAppId::Fluidanimate,
                BeAppId::Blackscholes,
            ],
            42,
        )
    }

    #[test]
    fn ranks_all_candidates_descending() {
        let p = placer();
        let ranked = p.rank(0.3 * 60_000.0);
        assert_eq!(ranked.len(), 3);
        for w in ranked.windows(2) {
            assert!(w[0].predicted_throughput >= w[1].predicted_throughput);
        }
    }

    #[test]
    fn chooses_a_feasible_candidate() {
        let p = placer();
        let d = p.choose(0.25 * 60_000.0).expect("feasible at low load");
        let cfg = d.config.expect("config present");
        assert!(cfg.validate(&NodeSpec::xeon_e5_2630_v4()).is_ok());
        assert!(d.predicted_throughput > 0.0);
    }

    #[test]
    fn no_candidate_at_impossible_load() {
        let p = placer();
        assert!(p.choose(10.0 * 60_000.0).is_none());
    }

    #[test]
    fn ranking_shifts_with_load() {
        // The winner at 20% load need not win at 70% — preference depends
        // on what the LS service leaves behind. We only assert the
        // evaluation runs and returns sane numbers at both points.
        let p = placer();
        let low = p.rank(0.2 * 60_000.0);
        let high = p.rank(0.7 * 60_000.0);
        assert!(low[0].predicted_throughput >= high[0].predicted_throughput);
    }
}
