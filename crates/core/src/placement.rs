//! BE placement: which best-effort job runs where, fleet-wide.
//!
//! The paper's cluster scheduler (Fig. 4) dispatches queries; something
//! must also decide which batch job lands on which node — and, once
//! upstream power caps start moving ([`crate::budget::BudgetTree`]),
//! *keep* deciding: a node that falls into safe mode or loses its cap
//! produces no BE throughput, so its job should run somewhere else.
//!
//! The [`PlacementEngine`] trait is that fleet-level optimizer: it is
//! handed a [`FleetView`] (one [`UnitView`] per serving unit — a fleet
//! shard) and returns a [`PlacementPlan`] of assign/migrate/evict
//! actions. Candidates are scored with the same machinery the per-node
//! controller trusts — the §V-B search over the predictor (table-backed
//! under [`SearchStrategy::FrontierPruned`], where the `ModelTables`
//! lattices drive the pruning) — times a **co-runner interference
//! score** ([`co_runner_score`]): jobs multiplexed onto one BE
//! partition contribute diminishing throughput, the scoring-mechanism
//! template from the large-cluster interference literature.
//!
//! Two implementations live here:
//!
//! * [`ScoredPlacementEngine`] — the fleet engine
//!   [`crate::fleet::Fleet`] consults at shard-interval boundaries:
//!   greedy marginal-gain moves away from safe-mode/exhausted units,
//!   never targeting a unit in safe mode or without a free slot.
//! * [`BePlacer`] — the original per-node candidate ranker, now an
//!   adapter implementing the same trait over empty units.
//!
//! When the `[scoring]` subsystem is active, the closed-form
//! [`co_runner_score`] gives way to per-app coefficients or the learned
//! [`SetScorer`] (see [`PlacementScoring`]): a candidate *set* of jobs
//! is valued by which applications it mixes, not just how many.

use crate::experiment::{ColocationPair, ExperimentSetup};
use crate::predictor::PerfPowerPredictor;
use crate::scoring::{catalog_sigma, SetScorer};
use crate::search::{ConfigSearch, SearchParams, SearchStrategy};
use std::sync::Arc;
use sturgeon_simnode::{NodeSpec, PairConfig};
use sturgeon_workloads::catalog::{BeAppId, LsServiceId};

/// Everything the placement engine may know about one serving unit (a
/// fleet shard: a contiguous node range under one controller).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitView {
    /// Unit index within the fleet (shard index).
    pub unit: usize,
    /// Global index of the unit's first node.
    pub first_node: usize,
    /// Physical nodes in the unit.
    pub nodes: usize,
    /// Offered load per node (QPS) in the most recent interval.
    pub qps_per_node: f64,
    /// Effective per-node power cap (W) after budget reclamation.
    pub cap_w: f64,
    /// True while the unit's controller holds the safe configuration —
    /// a migration *source*, never a target.
    pub safe_mode: bool,
    /// True when the unit's balancer ran out of harvest moves while QoS
    /// kept violating — the second migration trigger.
    pub exhausted: bool,
    /// BE jobs currently multiplexed on the unit's BE partition.
    pub be_jobs: u32,
    /// Job capacity of the unit's BE partition.
    pub be_slots: u32,
    /// Measured per-node normalized BE throughput, last interval.
    pub last_be_tput: f64,
}

/// The fleet snapshot handed to [`PlacementEngine::plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetView {
    /// Interval timestamp (s).
    pub t_s: f64,
    /// The BE application whose jobs are being placed (homogeneous
    /// fleet).
    pub be: BeAppId,
    /// One view per serving unit, in unit order.
    pub units: Vec<UnitView>,
    /// Evicted jobs waiting in the batch queue for a free slot.
    pub queued_jobs: u32,
}

/// One step of a placement plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementAction {
    /// Take one queued job and start it on `unit`.
    Assign {
        /// Target unit.
        unit: usize,
        /// The job's application.
        be: BeAppId,
    },
    /// Move one job from `from` to `to`.
    Migrate {
        /// Source unit (loses one job).
        from: usize,
        /// Target unit (gains one job).
        to: usize,
        /// The job's application.
        be: BeAppId,
    },
    /// Stop one job on `unit` and return it to the batch queue.
    Evict {
        /// Source unit.
        unit: usize,
        /// The job's application.
        be: BeAppId,
    },
}

/// An ordered list of actions; the fleet applies them in order, skipping
/// any that became invalid (stale view, concurrent cap change).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementPlan {
    /// Actions in application order.
    pub actions: Vec<PlacementAction>,
}

impl PlacementPlan {
    /// True when the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A fleet-aware placement policy: look at every serving unit, return
/// the job moves worth making.
pub trait PlacementEngine {
    /// Display name used in reports and traces.
    fn name(&self) -> &'static str;

    /// Computes the actions to apply at this boundary.
    fn plan(&mut self, view: &FleetView) -> PlacementPlan;
}

/// Normalized total throughput of `jobs` identical jobs multiplexed on
/// one BE partition, in units of a single dedicated job: `k / (1 + σ·(k
/// − 1))`. One job scores exactly 1; every additional co-runner adds a
/// diminishing share, with `sigma` the pairwise interference
/// coefficient (0 = perfect scaling, 1 = pure time-sharing). This is
/// the per-candidate co-runner score the plan ranks target units with.
pub fn co_runner_score(jobs: u32, sigma: f64) -> f64 {
    if jobs == 0 {
        return 0.0;
    }
    let k = jobs as f64;
    k / (1.0 + sigma * (k - 1.0))
}

/// Tunables for [`ScoredPlacementEngine`] (and the fleet's placement
/// boundary cadence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementParams {
    /// Run the engine every `interval_s` stepped intervals.
    pub interval_s: u32,
    /// Job capacity per unit's BE partition.
    pub be_slots: u32,
    /// Most actions per plan (bounds churn per boundary).
    pub max_moves: usize,
    /// Pairwise co-runner interference coefficient (see
    /// [`co_runner_score`]).
    pub sigma: f64,
}

impl Default for PlacementParams {
    fn default() -> Self {
        Self {
            interval_s: 30,
            be_slots: 2,
            max_moves: 8,
            sigma: 0.25,
        }
    }
}

/// How [`ScoredPlacementEngine`] values a set of jobs multiplexed on one
/// BE partition. Absent (the legacy default), the closed-form
/// [`co_runner_score`] with the global `[placement].sigma` applies —
/// bit-identical to pre-scoring runs.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementScoring {
    /// Closed-form score, but with the app's *own* catalog contention
    /// coefficient ([`sturgeon_workloads::be::BeAppParams::contention_sigma`])
    /// instead of the global `[placement].sigma` knob.
    PerAppSigma,
    /// The learned co-runner set scorer: `score(S)` over the actual
    /// candidate set.
    Learned(SetScorer),
}

impl PlacementScoring {
    /// Normalized total-throughput score of `jobs` jobs of `be` sharing
    /// one BE partition under this scoring mode.
    pub fn factor(&self, be: BeAppId, jobs: u32) -> f64 {
        match self {
            Self::PerAppSigma => co_runner_score(jobs, catalog_sigma(be.name())),
            Self::Learned(scorer) => {
                let set = vec![be.name(); jobs as usize];
                scorer.score(&set)
            }
        }
    }
}

/// The fleet placement engine: scores every unit's per-job value with
/// the predictor-backed search at the unit's own load and cap, applies
/// the co-runner interference score for multiplexing, and greedily
/// takes the largest positive marginal gains — which is exactly what
/// turns a safe-mode entry from a dead-end counter into a migration:
/// a parked unit's jobs are worth zero where they are and their full
/// marginal value anywhere healthy.
///
/// The model alone is not enough: a unit thrashing in and out of safe
/// mode can look clean at the instant a boundary samples it, and its
/// predicted throughput is exactly the number its own balancer just
/// proved wrong. The engine therefore keeps a per-unit **health EWMA**
/// across boundaries: units hosting jobs are scored by how much of
/// their modeled throughput they actually delivered last interval,
/// idle units by their control-state flags. A unit only regains full
/// trust by delivering, which is what stops jobs sloshing back onto an
/// overloaded unit the moment it momentarily exits safe mode.
pub struct ScoredPlacementEngine {
    predictor: Arc<PerfPowerPredictor>,
    spec: NodeSpec,
    search: SearchParams,
    params: PlacementParams,
    scoring: Option<PlacementScoring>,
    /// Per-unit trust in the model's value estimate (EWMA across
    /// boundaries, 0 = never delivers, 1 = delivers as modeled).
    health: Vec<f64>,
    /// Scratch: per-unit per-job base value, refilled every plan.
    base: Vec<f64>,
    /// Scratch: per-unit job counts as the plan is built.
    jobs: Vec<u32>,
    /// Scratch: co-runner score by job count for the plan's app,
    /// refilled every plan (index = k).
    score_k: Vec<f64>,
}

impl std::fmt::Debug for ScoredPlacementEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoredPlacementEngine")
            .field("params", &self.params)
            .finish()
    }
}

/// Marginal gain below which a move is churn, not progress.
const MIN_GAIN: f64 = 1e-6;

/// Per-boundary smoothing of the health EWMA: each boundary keeps half
/// the prior trust and folds in half of the fresh evidence, so a unit
/// recovers (or decays) over a few placement intervals rather than
/// flapping with the instantaneous safe-mode flag.
const HEALTH_ALPHA: f64 = 0.5;

/// Smoothing for units that produced *no* evidence this boundary (idle,
/// no flags raised). Absence of evidence is not good evidence: an idle
/// unit drifts back toward full trust only slowly, so a freshly vacated
/// unit cannot out-score the units actually delivering jobs a boundary
/// later and pull its job straight back (placement ping-pong).
const IDLE_ALPHA: f64 = 0.1;

/// A migration must beat the value it destroys at the source by this
/// relative margin (on top of [`MIN_GAIN`]). Delivery ratios carry a
/// few percent of measurement noise; a move that wins by less than the
/// noise floor is churn with a migration cost and no expected payoff.
const MOVE_MARGIN: f64 = 0.1;

impl ScoredPlacementEngine {
    /// Builds the engine around a (typically shared) predictor artifact.
    pub fn new(
        predictor: Arc<PerfPowerPredictor>,
        spec: NodeSpec,
        search: SearchParams,
        params: PlacementParams,
    ) -> Self {
        Self {
            predictor,
            spec,
            search,
            params,
            scoring: None,
            health: Vec::new(),
            base: Vec::new(),
            jobs: Vec::new(),
            score_k: Vec::new(),
        }
    }

    /// Switches the co-runner valuation away from the closed-form
    /// global-σ score (see [`PlacementScoring`]).
    pub fn with_scoring(mut self, scoring: PlacementScoring) -> Self {
        self.scoring = Some(scoring);
        self
    }

    /// The engine's tunables.
    pub fn params(&self) -> &PlacementParams {
        &self.params
    }

    /// The scoring mode in force (`None` = legacy closed-form).
    pub fn scoring(&self) -> Option<&PlacementScoring> {
        self.scoring.as_ref()
    }

    /// Normalized total-throughput score of `jobs` jobs of `be` sharing
    /// one BE partition, under the engine's scoring mode.
    pub fn score_jobs(&self, be: BeAppId, jobs: u32) -> f64 {
        match &self.scoring {
            None => co_runner_score(jobs, self.params.sigma),
            Some(scoring) => scoring.factor(be, jobs),
        }
    }

    /// Modeled per-job value of running on `unit`: the search's
    /// predicted best feasible BE throughput at the unit's load under
    /// its *current effective cap*, per node, times the node count.
    fn modeled_value(&self, unit: &UnitView) -> f64 {
        let search = ConfigSearch::new(&self.predictor, self.spec.clone(), unit.cap_w, self.search);
        let outcome = match self.search.strategy {
            SearchStrategy::Heuristic => search.best_config(unit.qps_per_node),
            SearchStrategy::FrontierPruned => search.pruned(unit.qps_per_node),
        };
        outcome.predicted_throughput * unit.nodes as f64
    }

    /// Fresh health evidence for one unit this boundary, as `(target,
    /// alpha)` for the EWMA update. A unit hosting jobs is judged on
    /// delivery — the fraction of its expected throughput (modeled base
    /// times the co-runner score of its job count) it actually produced
    /// last interval — because an overloaded unit's model is precisely
    /// the number its balancer keeps failing to realize. An idle unit
    /// can only be judged on its control state: safe mode is worth
    /// nothing, an exhausted balancer means the model overpromises
    /// (half trust), and a clean idle unit yields no evidence at all —
    /// it drifts back toward full trust at the slow [`IDLE_ALPHA`]
    /// rate.
    fn health_target(&self, unit: &UnitView, modeled: f64) -> (f64, f64) {
        if unit.safe_mode {
            return (0.0, HEALTH_ALPHA);
        }
        let flag_cap = if unit.exhausted { 0.5 } else { 1.0 };
        let expected = modeled * self.score_k[unit.be_jobs as usize];
        if unit.be_jobs > 0 && expected > f64::EPSILON {
            (
                (unit.last_be_tput / expected).clamp(0.0, flag_cap),
                HEALTH_ALPHA,
            )
        } else if unit.exhausted {
            (flag_cap, HEALTH_ALPHA)
        } else {
            (flag_cap, IDLE_ALPHA)
        }
    }

    /// Total value of `jobs` jobs on unit `i`.
    fn value(&self, i: usize, jobs: u32) -> f64 {
        self.base[i] * self.score_k[jobs as usize]
    }

    /// Marginal value of adding one job to unit `i` holding `jobs`.
    fn gain_add(&self, i: usize, jobs: u32) -> f64 {
        self.value(i, jobs + 1) - self.value(i, jobs)
    }

    /// Value lost by removing one job from unit `i` holding `jobs`.
    fn loss_remove(&self, i: usize, jobs: u32) -> f64 {
        debug_assert!(jobs > 0);
        self.value(i, jobs) - self.value(i, jobs - 1)
    }
}

impl PlacementEngine for ScoredPlacementEngine {
    fn name(&self) -> &'static str {
        "scored"
    }

    fn plan(&mut self, view: &FleetView) -> PlacementPlan {
        let n = view.units.len();
        self.health.resize(n, 1.0);
        self.base.clear();
        self.jobs.clear();
        // Tabulate the co-runner score once per plan: the view's app is
        // homogeneous, so a set is fully described by its cardinality.
        let max_k = view
            .units
            .iter()
            .map(|u| u.be_slots.max(u.be_jobs))
            .max()
            .unwrap_or(0)
            + 1;
        self.score_k = (0..=max_k).map(|k| self.score_jobs(view.be, k)).collect();
        let debug = std::env::var_os("STURGEON_PLACEMENT_DEBUG").is_some();
        for (i, u) in view.units.iter().enumerate() {
            let modeled = self.modeled_value(u);
            let (target, alpha) = self.health_target(u, modeled);
            self.health[i] = (1.0 - alpha) * self.health[i] + alpha * target;
            // Safe mode is a hard zero regardless of history: the
            // partition is parked *right now*.
            let base = if u.safe_mode {
                0.0
            } else {
                modeled * self.health[i]
            };
            if debug {
                eprintln!(
                    "placement t={:>5.0} unit {i}: qps/node={:>7.0} cap={:>5.1}W safe={} exh={} \
                     jobs={} tput={:.3} modeled={:.3} health={:.3} base={:.3}",
                    view.t_s,
                    u.qps_per_node,
                    u.cap_w,
                    u.safe_mode as u8,
                    u.exhausted as u8,
                    u.be_jobs,
                    u.last_be_tput,
                    modeled,
                    self.health[i],
                    base
                );
            }
            self.base.push(base);
        }
        self.jobs.extend(view.units.iter().map(|u| u.be_jobs));
        let mut queued = view.queued_jobs;
        let mut plan = PlacementPlan::default();

        // A unit may receive a job only when healthy and not full.
        let can_host = |units: &[UnitView], jobs: &[u32], i: usize| -> bool {
            !units[i].safe_mode && jobs[i] < units[i].be_slots
        };

        while plan.actions.len() < self.params.max_moves {
            // Best assignment of a queued job (no source cost).
            let mut best_assign: Option<(usize, f64)> = None;
            if queued > 0 {
                for i in 0..n {
                    if !can_host(&view.units, &self.jobs, i) {
                        continue;
                    }
                    let g = self.gain_add(i, self.jobs[i]);
                    if g > best_assign.map_or(MIN_GAIN, |(_, bg)| bg) {
                        best_assign = Some((i, g));
                    }
                }
            }
            // Best migration: max over (source with jobs, healthy
            // target) of marginal gain minus source loss. The gain must
            // clear a relative margin over the destroyed source value —
            // a move that wins by less than the evidence noise floor is
            // churn, not progress.
            let mut best_move: Option<(usize, usize, f64)> = None;
            for from in 0..n {
                if self.jobs[from] == 0 {
                    continue;
                }
                let loss = self.loss_remove(from, self.jobs[from]);
                let threshold = MIN_GAIN.max(MOVE_MARGIN * loss);
                for to in 0..n {
                    if to == from || !can_host(&view.units, &self.jobs, to) {
                        continue;
                    }
                    let g = self.gain_add(to, self.jobs[to]) - loss;
                    if g > threshold && g > best_move.map_or(f64::NEG_INFINITY, |(_, _, bg)| bg) {
                        best_move = Some((from, to, g));
                    }
                }
            }
            match (best_assign, best_move) {
                (Some((i, ga)), m) if m.is_none_or(|(_, _, gm)| ga >= gm) => {
                    self.jobs[i] += 1;
                    queued -= 1;
                    plan.actions.push(PlacementAction::Assign {
                        unit: i,
                        be: view.be,
                    });
                }
                (_, Some((from, to, _))) => {
                    self.jobs[from] -= 1;
                    self.jobs[to] += 1;
                    plan.actions.push(PlacementAction::Migrate {
                        from,
                        to,
                        be: view.be,
                    });
                }
                _ => break,
            }
        }

        // Jobs stranded on safe-mode units with nowhere to go return to
        // the queue — a later plan re-assigns them once capacity
        // recovers, instead of leaving them pinned to a parked
        // partition.
        for i in 0..n {
            if plan.actions.len() >= self.params.max_moves {
                break;
            }
            while view.units[i].safe_mode
                && self.jobs[i] > 0
                && plan.actions.len() < self.params.max_moves
            {
                self.jobs[i] -= 1;
                plan.actions.push(PlacementAction::Evict {
                    unit: i,
                    be: view.be,
                });
            }
        }
        plan
    }
}

/// The outcome of evaluating one candidate at one load.
#[derive(Debug, Clone)]
pub struct PlacementDecision {
    /// The candidate BE application.
    pub be: BeAppId,
    /// Best feasible configuration found for it (`None` when the search
    /// could not find any feasible co-location at this load).
    pub config: Option<PairConfig>,
    /// Predicted normalized throughput of that configuration.
    pub predicted_throughput: f64,
}

/// A placement engine for one LS service over a fixed candidate set.
///
/// Construction runs the offline phase (profiling + training) once per
/// candidate; [`BePlacer::evaluate`] and [`BePlacer::select`] are then
/// cheap enough to run at scheduling time, and the [`PlacementEngine`]
/// impl adapts the same ranking to the fleet API: each empty, healthy
/// unit is assigned the best-scoring feasible candidate at that unit's
/// own load and cap.
pub struct BePlacer {
    spec: NodeSpec,
    budget_w: f64,
    ls: LsServiceId,
    candidates: Vec<(BeAppId, PerfPowerPredictor)>,
}

impl std::fmt::Debug for BePlacer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BePlacer")
            .field("ls", &self.ls.name())
            .field("budget_w", &self.budget_w)
            .field("candidates", &self.candidates.len())
            .finish()
    }
}

impl BePlacer {
    /// Trains a predictor per candidate pair (offline phase).
    pub fn new(ls: LsServiceId, candidates: &[BeAppId], seed: u64) -> Self {
        assert!(!candidates.is_empty(), "at least one candidate");
        let mut trained = Vec::with_capacity(candidates.len());
        let mut spec = NodeSpec::xeon_e5_2630_v4();
        let mut budget = 0.0;
        for &be in candidates {
            let setup = ExperimentSetup::new(ColocationPair::new(ls, be), seed);
            spec = setup.spec().clone();
            budget = setup.budget_w();
            trained.push((be, setup.train_default_predictor()));
        }
        Self {
            spec,
            budget_w: budget,
            ls,
            candidates: trained,
        }
    }

    /// The LS service this placer serves.
    pub fn ls(&self) -> LsServiceId {
        self.ls
    }

    /// Candidate count.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// The per-node power budget the candidates were profiled under.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Evaluates every candidate at the given LS load under the given
    /// per-node power cap, best first.
    pub fn evaluate(&self, qps: f64, cap_w: f64) -> Vec<PlacementDecision> {
        let mut out: Vec<PlacementDecision> = self
            .candidates
            .iter()
            .map(|(be, predictor)| {
                let search =
                    ConfigSearch::new(predictor, self.spec.clone(), cap_w, SearchParams::default());
                let outcome = search.best_config(qps);
                PlacementDecision {
                    be: *be,
                    config: outcome.best,
                    predicted_throughput: outcome.predicted_throughput,
                }
            })
            .collect();
        out.sort_by(|a, b| b.predicted_throughput.total_cmp(&a.predicted_throughput));
        out
    }

    /// The single best candidate at the given load and cap (`None` when
    /// no candidate has any feasible configuration).
    pub fn select(&self, qps: f64, cap_w: f64) -> Option<PlacementDecision> {
        self.evaluate(qps, cap_w)
            .into_iter()
            .find(|d| d.config.is_some())
    }
}

impl PlacementEngine for BePlacer {
    fn name(&self) -> &'static str {
        "be-placer"
    }

    /// Assigns the best feasible candidate to every empty, healthy
    /// unit, at that unit's own load and effective cap. Units already
    /// hosting jobs, in safe mode, or without a free slot are left
    /// alone — this adapter places, it does not migrate.
    fn plan(&mut self, view: &FleetView) -> PlacementPlan {
        let mut plan = PlacementPlan::default();
        for unit in &view.units {
            if unit.be_jobs > 0 || unit.safe_mode || unit.be_slots == 0 {
                continue;
            }
            let cap = if unit.cap_w > 0.0 {
                unit.cap_w
            } else {
                self.budget_w
            };
            if let Some(d) = self.select(unit.qps_per_node, cap) {
                plan.actions.push(PlacementAction::Assign {
                    unit: unit.unit,
                    be: d.be,
                });
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placer() -> BePlacer {
        BePlacer::new(
            LsServiceId::Memcached,
            &[
                BeAppId::Ferret,
                BeAppId::Fluidanimate,
                BeAppId::Blackscholes,
            ],
            42,
        )
    }

    fn unit(i: usize, jobs: u32, safe: bool) -> UnitView {
        UnitView {
            unit: i,
            first_node: i * 4,
            nodes: 4,
            qps_per_node: 0.3 * 60_000.0,
            cap_w: 0.0,
            safe_mode: safe,
            exhausted: false,
            be_jobs: jobs,
            be_slots: 2,
            last_be_tput: 0.5,
        }
    }

    #[test]
    fn ranks_all_candidates_descending() {
        let p = placer();
        let ranked = p.evaluate(0.3 * 60_000.0, p.budget_w());
        assert_eq!(ranked.len(), 3);
        for w in ranked.windows(2) {
            assert!(w[0].predicted_throughput >= w[1].predicted_throughput);
        }
    }

    #[test]
    fn chooses_a_feasible_candidate() {
        let p = placer();
        let d = p
            .select(0.25 * 60_000.0, p.budget_w())
            .expect("feasible at low load");
        let cfg = d.config.expect("config present");
        assert!(cfg.validate(&NodeSpec::xeon_e5_2630_v4()).is_ok());
        assert!(d.predicted_throughput > 0.0);
    }

    #[test]
    fn no_candidate_at_impossible_load() {
        let p = placer();
        assert!(p.select(10.0 * 60_000.0, p.budget_w()).is_none());
    }

    #[test]
    fn ranking_shifts_with_load() {
        // The winner at 20% load need not win at 70% — preference depends
        // on what the LS service leaves behind. We only assert the
        // evaluation runs and returns sane numbers at both points.
        let p = placer();
        let low = p.evaluate(0.2 * 60_000.0, p.budget_w());
        let high = p.evaluate(0.7 * 60_000.0, p.budget_w());
        assert!(low[0].predicted_throughput >= high[0].predicted_throughput);
    }

    #[test]
    fn adapter_assigns_only_empty_healthy_units() {
        let mut p = placer();
        let view = FleetView {
            t_s: 0.0,
            be: BeAppId::Ferret,
            units: vec![unit(0, 0, false), unit(1, 1, false), unit(2, 0, true)],
            queued_jobs: 0,
        };
        let plan = p.plan(&view);
        assert_eq!(plan.actions.len(), 1);
        assert!(matches!(
            plan.actions[0],
            PlacementAction::Assign { unit: 0, .. }
        ));
    }

    #[test]
    fn score_jobs_has_three_tiers() {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Memcached, BeAppId::Fluidanimate),
            42,
        );
        let predictor = Arc::new(setup.train_default_predictor());
        let engine = |scoring: Option<PlacementScoring>| {
            let mut e = ScoredPlacementEngine::new(
                predictor.clone(),
                setup.spec().clone(),
                SearchParams::default(),
                PlacementParams::default(),
            );
            if let Some(s) = scoring {
                e = e.with_scoring(s);
            }
            e
        };
        // Tier 1: scoring absent → the global-σ closed form, exactly.
        let legacy = engine(None);
        for k in 0..4 {
            assert_eq!(
                legacy.score_jobs(BeAppId::Fluidanimate, k).to_bits(),
                co_runner_score(k, 0.25).to_bits()
            );
        }
        // Tier 2: per-app σ — fluidanimate (σ = 0.5) scores lower than
        // the global default; raytrace (σ = 0.25) matches it exactly.
        let per_app = engine(Some(PlacementScoring::PerAppSigma));
        assert!(
            per_app.score_jobs(BeAppId::Fluidanimate, 2)
                < legacy.score_jobs(BeAppId::Fluidanimate, 2)
        );
        assert_eq!(
            per_app.score_jobs(BeAppId::Raytrace, 3).to_bits(),
            legacy.score_jobs(BeAppId::Raytrace, 3).to_bits()
        );
        // Tier 3: the learned scorer drives the valuation.
        let learned = engine(Some(PlacementScoring::Learned(SetScorer::from_sigmas([(
            "fluidanimate",
            0.9,
        )]))));
        assert!(
            learned.score_jobs(BeAppId::Fluidanimate, 2)
                < per_app.score_jobs(BeAppId::Fluidanimate, 2)
        );
        assert_eq!(learned.score_jobs(BeAppId::Fluidanimate, 1), 1.0);
        assert_eq!(learned.score_jobs(BeAppId::Fluidanimate, 0), 0.0);
    }

    #[test]
    fn co_runner_score_diminishes() {
        assert_eq!(co_runner_score(0, 0.25), 0.0);
        assert_eq!(co_runner_score(1, 0.25), 1.0);
        let two = co_runner_score(2, 0.25);
        assert!(two > 1.0 && two < 2.0, "{two}");
        // Pure time-sharing: no gain from co-running.
        assert!((co_runner_score(3, 1.0) - 1.0).abs() < 1e-12);
        // Perfect scaling: linear.
        assert_eq!(co_runner_score(3, 0.0), 3.0);
        // Monotone in k for sub-unity sigma.
        for k in 1..8 {
            assert!(co_runner_score(k + 1, 0.4) > co_runner_score(k, 0.4));
        }
    }
}
