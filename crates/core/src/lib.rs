//! # sturgeon
//!
//! A reproduction of **"Sturgeon: Preference-aware Co-location for
//! Improving Utilization of Power Constrained Computers"** (Pang et al.,
//! IPDPS 2020): a per-node runtime that co-locates a latency-sensitive
//! (LS) service with a best-effort (BE) application under a hard power
//! budget, maximizing BE throughput while guaranteeing the LS service's
//! p95 latency target.
//!
//! ## Architecture (paper Fig. 4)
//!
//! * [`profiler`] — collects offline training samples of performance and
//!   power across resource configurations (§V-A: "in a dedicated cluster,
//!   it is feasible to collect the training samples").
//! * [`predictor`] — per-application performance/power models trained on
//!   those samples (DT / KNN / SV / MLP / LR, §V-C), answering "is this
//!   configuration feasible?" and "what BE throughput does it yield?".
//! * [`search`] — the §V-B binary-search algorithm that finds, among all
//!   feasible `<C1,F1,L1; C2,F2,L2>` configurations, the one maximizing
//!   BE throughput — in O(N log N) model calls instead of the O(N⁴)
//!   exhaustive sweep.
//! * [`balancer`] — the preference-aware resource balancer (Algorithm 2):
//!   binary-harvest compensation for QoS violations the predictor cannot
//!   foresee (unmanaged-resource contention, OS jitter).
//! * [`controller`] — the top-level slack-band controller (Algorithm 1)
//!   tying predictor, search and balancer together.
//! * [`baselines`] — the enhanced-PARTIES comparison controller from
//!   §VII-A, Sturgeon-NoB (balancer disabled), and a static-reservation
//!   controller, for the Figs. 9–11 experiments.
//! * [`experiment`] — the co-location run harness producing the paper's
//!   metrics (QoS guarantee rate, normalized BE throughput, overload),
//!   driven through the builder API ([`experiment::ExperimentSetup::runner`]).
//! * [`obs`] — the structured observability layer: typed per-interval
//!   decision traces through pluggable [`obs::TraceSink`]s and a
//!   dependency-free [`obs::MetricsRegistry`], both zero-cost when not
//!   attached to a run.

pub mod balancer;
pub mod baselines;
pub mod budget;
pub mod cache;
pub mod cluster;
pub mod controller;
pub mod dispatch;
pub mod error;
pub mod experiment;
pub mod fleet;
pub mod heracles;
pub mod multi;
pub mod obs;
pub mod online;
pub mod placement;
pub mod predictor;
pub mod profiler;
pub mod report;
pub mod scenario;
pub mod scoring;
pub mod search;
pub mod tables;

/// Convenient re-exports covering the typical experiment workflow.
pub mod prelude {
    pub use crate::balancer::{BalancerAction, BalancerParams, HarvestTarget, ResourceBalancer};
    pub use crate::baselines::{PartiesController, StaticReservationController};
    pub use crate::budget::{BudgetCap, BudgetEvent, BudgetLevel, BudgetTree};
    pub use crate::cache::{FrontierCache, PredictionCache};
    pub use crate::cluster::{Cluster, ClusterResult};
    pub use crate::controller::{
        ControllerFaultCounters, ControllerParams, ResourceController, RobustnessParams,
        SturgeonController,
    };
    pub use crate::dispatch::{DispatchPolicy, Dispatcher};
    pub use crate::error::SturgeonError;
    pub use crate::experiment::{
        ActuationPolicy, ColocationPair, ConfiguredRun, ExperimentSetup, FaultReport, RunBuilder,
        RunResult,
    };
    pub use crate::fleet::{Fleet, FleetBudget, FleetParams, FleetResult, TrainingMode};
    pub use crate::heracles::{HeraclesController, HeraclesParams};
    pub use crate::multi::{
        MultiProfiler, MultiProfilerConfig, MultiSearch, MultiSturgeonController,
    };
    pub use crate::obs::{
        JsonlSink, MetricsRegistry, NullSink, RingSink, SearchReason, TraceEvent, TraceSink,
    };
    pub use crate::online::{OnlineAdaptor, OnlineAdaptorConfig, OnlineSample};
    pub use crate::placement::{
        co_runner_score, BePlacer, FleetView, PlacementAction, PlacementDecision, PlacementEngine,
        PlacementParams, PlacementPlan, PlacementScoring, ScoredPlacementEngine, UnitView,
    };
    pub use crate::predictor::{ModelKind, PerfPowerPredictor, PredictorConfig};
    pub use crate::profiler::{ProfileDatasets, Profiler, ProfilerConfig};
    pub use crate::scenario::{
        ControllerKind, ControllerSpec, FleetDispatch, FleetSpec, Scenario, ScenarioKind,
        ScenarioMetrics, ScenarioOutcome, SearchProbe, Tolerance,
    };
    pub use crate::scoring::{
        train_cold_start_predictor, train_fallback_predictor, ColdStartOutcome, ColdStartPredictor,
        ColdStartReport, ProfileMatrix, ScoreMetric, ScoringParams, SetScorer,
    };
    pub use crate::search::{
        ConfigSearch, SearchOutcome, SearchParams, SearchStats, SearchStrategy,
    };
    pub use crate::tables::{BeLattice, ModelTables};
    pub use sturgeon_simnode::{
        ActuationFault, Allocation, FaultInjector, FaultPlan, FaultStats, FaultyActuators,
        IntervalFault, NodeSpec, PairConfig, PowerModel, TelemetryFault,
    };
    pub use sturgeon_workloads::catalog::{BeAppId, LsServiceId};
    pub use sturgeon_workloads::loadgen::LoadProfile;
}
