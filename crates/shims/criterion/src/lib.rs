//! Offline stand-in for `criterion`.
//!
//! The real crate does statistical analysis, HTML reports and regression
//! tracking; this shim keeps the measurement loop and the reporting line.
//! Each benchmark is auto-calibrated so one sample lasts a few
//! milliseconds, then `sample_size` samples are taken and the minimum /
//! median / maximum are printed in criterion's familiar
//! `time: [lo mid hi]` format.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// Top-level benchmark driver, handed to each registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(id.as_ref(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f` back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes long enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 2).max(1);
    }

    let mut per_iter: Vec<Duration> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    per_iter.sort();

    let lo = per_iter[0];
    let mid = per_iter[per_iter.len() / 2];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{id:<40} time:   [{} {} {}]  ({} iters/sample, {} samples)",
        fmt_duration(lo),
        fmt_duration(mid),
        fmt_duration(hi),
        iters,
        sample_size,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
