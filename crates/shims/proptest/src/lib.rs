//! Offline stand-in for `proptest`.
//!
//! The real crate shrinks failing inputs and persists regressions; this
//! shim keeps the part the workspace's tests rely on — running each
//! property over many deterministic pseudo-random cases — behind the same
//! surface: [`Strategy`] (with `prop_map`), range/tuple strategies,
//! [`collection::vec`], [`ProptestConfig`], the [`proptest!`] macro and
//! the `prop_assert*` macros. Failures report the generated arguments so
//! a case can be reproduced by hand.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Everything a test file needs via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A property-level failure (produced by the `prop_assert*` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from the property name, so every property sees its own
    /// reproducible stream.
    pub fn for_property(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Raw access for strategy implementations.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + fmt::Debug + Copy,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.start..self.end)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical whole-domain strategy (the shim's counterpart
/// of proptest's `Arbitrary`).
pub trait ArbitraryValue: fmt::Debug {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u32>()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<f64>()
    }
}

/// The [`any`] strategy.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// A union over `options`; sampling picks one uniformly.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(options)
    }};
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt;
    use std::ops::Range;

    /// Vectors with element values from `element` and lengths from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{} (left: {:?}, right: {:?})", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, y in 0.0f64..1.0) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_property(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let args_desc = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, args_desc
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }

        #[test]
        fn collection_vec_sizes(v in crate::collection::vec(1u32..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..4).contains(&x)));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                (crate::ProptestConfig::with_cases(4));
                fn always_fails(x in 0u32..3) { prop_assert!(x > 100, "x was {}", x); }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("inputs:"), "message: {msg}");
    }
}
