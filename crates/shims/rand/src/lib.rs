//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the exact API its
//! code uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] sampling methods (`gen`, `gen_bool`, `gen_range`) and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — high-quality, fast, and fully reproducible, which
//! is all the simulators and model trainers here need. It makes no
//! cryptographic claims whatsoever.

use std::ops::{Range, RangeInclusive};

/// Construction of a reproducible generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng) as f32
    }
}

/// Unbiased uniform draw from `[0, n)` (`n == 0` means the full 2⁶⁴ span).
fn uniform_u64_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    if n == 0 {
        return rng.next_u64();
    }
    // Lemire-style rejection keeps the draw unbiased for any span.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (n as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= threshold {
            return hi;
        }
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values [`Rng::gen`] can produce.
pub trait StandardDistributed {
    /// One standard draw.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardDistributed for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardDistributed for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardDistributed for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistributed for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDistributed for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The raw 64-bit source every sampler draws from.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A standard draw of `T` (uniform `[0,1)` for floats).
    fn gen<T: StandardDistributed>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, RA>(&mut self, range: RA) -> T
    where
        Self: Sized,
        T: SampleUniform,
        RA: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`SliceRandom`).
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=9);
            assert!(y <= 9);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
