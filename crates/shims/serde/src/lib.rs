//! Offline stand-in for `serde` (the subset this workspace uses).
//!
//! Real serde is a visitor-based framework; none of that generality is
//! needed here, so the shim's [`Serialize`] renders straight into a
//! [`Value`] tree that `serde_json` then prints or parses. The derive
//! macros live in the sibling `serde_derive` shim and are re-exported
//! under the usual names.

use std::fmt;
use std::ops::Index;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object insertion order is preserved so the
/// derive output matches declaration order (stable reports, clean diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// All JSON numbers, as `f64` (ample for this workspace's counters).
    Number(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of the value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (numbers that round-trip through `i64`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Unsigned view (non-negative whole numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_value_eq_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, *n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

pub(crate) fn write_number(f: &mut impl fmt::Write, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no Inf/NaN; match serde_json's lossy `null` convention.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

pub(crate) fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Marker for derived deserialization (nothing in this workspace
/// deserializes into typed values, so the trait carries no methods).
pub trait Deserialize {}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize + ?Sized> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_into_values() {
        assert_eq!(1.5f64.to_value(), Value::Number(1.5));
        assert_eq!(7u32.to_value(), Value::Number(7.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }

    #[test]
    fn value_accessors_and_indexing() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("x".into())),
            ("n".into(), Value::Number(3.0)),
        ]);
        assert_eq!(v["name"], "x");
        assert_eq!(v["n"], 3);
        assert!(v["missing"].is_null());
        assert_eq!(v["n"].as_f64(), Some(3.0));
    }

    #[test]
    fn display_emits_compact_json() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Number(1.0), Value::Null]),
            ),
            ("s".into(), Value::String("q\"e".into())),
        ]);
        assert_eq!(v.to_string(), r#"{"a":[1,null],"s":"q\"e"}"#);
    }
}
