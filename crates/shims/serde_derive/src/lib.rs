//! Derive macros for the vendored serde shim.
//!
//! Implemented directly on the compiler's `proc_macro` token API (no
//! syn/quote — the build environment has no crates.io access). Supports
//! the shapes this workspace actually derives on: structs with named
//! fields, and enums with unit, tuple, or struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's tree-valued flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{pushes}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| variant_arm(&item.name, v))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        item.name
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`. Nothing in this workspace deserializes
/// into typed values (only `serde_json::Value` is parsed), so the derive
/// emits the marker impl and nothing else.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn variant_arm(enum_name: &str, v: &Variant) -> String {
    match &v.fields {
        VariantFields::Unit => format!(
            "{enum_name}::{v_name} => ::serde::Value::String(\"{v_name}\".to_string()),",
            v_name = v.name
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{enum_name}::{v_name}({pat}) => ::serde::Value::Object(vec![(\
                     \"{v_name}\".to_string(), ::serde::Value::Array(vec![{items}])\
                 )]),",
                v_name = v.name,
                pat = binds.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let pat = fields.join(", ");
            let items: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"))
                .collect();
            format!(
                "{enum_name}::{v_name} {{ {pat} }} => ::serde::Value::Object(vec![(\
                     \"{v_name}\".to_string(), ::serde::Value::Object(vec![{items}])\
                 )]),",
                v_name = v.name
            )
        }
    }
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parses `[attrs] [pub] (struct|enum) Name { ... }` from the derive input.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    // No generic parameters appear on any derived type in this workspace;
    // fail loudly rather than generating a wrong impl if one shows up.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the serde shim derive does not support generic types");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1, // e.g. `where` clauses (none expected)
            None => panic!("no body found for {name}"),
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("cannot derive for item kind `{other}`"),
    };
    Item { name, shape }
}

/// Field names of a named-field body: `[attrs] [pub] name : Type , ...`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("expected field name at token {i}");
        };
        fields.push(id.to_string());
        // Skip past the `:` and the type, up to the next top-level comma.
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Variants of an enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("expected variant name at token {i}");
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                // Count top-level commas to get the tuple arity.
                let mut arity = 0usize;
                let mut depth = 0i32;
                let mut saw_any = false;
                for t in g.stream() {
                    saw_any = true;
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
                        _ => {}
                    }
                }
                VariantFields::Tuple(if saw_any { arity + 1 } else { 0 })
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 2; // the `#` and the bracketed group
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            // `pub(crate)` and friends carry a parenthesized group.
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}
