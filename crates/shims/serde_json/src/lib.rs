//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON (compact or pretty) and parses JSON text back into it.

use serde::Serialize;
pub use serde::Value;
use std::fmt;

/// Parse or serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset the parser had reached.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    use std::fmt::Write;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                let _ = serde_write_escaped(out, k);
                out.push_str(": ");
                pretty(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn serde_write_escaped(out: &mut String, s: &str) -> fmt::Result {
    use std::fmt::Write;
    write!(out, "{}", Value::String(s.to_string()))
}

/// Parses JSON text into a [`Value`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> Error {
    Error {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::String(s) => s,
                    _ => return Err(err("object key must be a string", *pos)),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(err("expected ':'", *pos));
                }
                *pos += 1;
                skip_ws(b, pos);
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| err("invalid \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("invalid \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| err("invalid UTF-8", *pos))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err(err("unterminated string", *pos))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| err("invalid number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_compact_output() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("s".into(), Value::String("x\ny".into())),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "nested".into(),
            Value::Object(vec![("k".into(), Value::Number(2.5))]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str("{} junk").is_err());
        assert!(from_str("[1, ]").is_err());
    }
}
