//! Offline stand-in for `parking_lot`: wraps the standard library's locks
//! behind parking_lot's non-poisoning API (`lock()` returns the guard
//! directly). Poisoning is converted into a panic propagation, which is
//! what parking_lot's semantics amount to for this workspace.

use std::sync;

/// A mutual-exclusion lock with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(3u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 6);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
