//! Offline stand-in for `rayon`.
//!
//! Instead of a work-stealing pool, parallelism comes from
//! `std::thread::scope`: the input is split into one contiguous chunk per
//! worker and each chunk is processed on its own scoped thread. The
//! expensive stage — the closure given to `map`/`for_each` — runs in
//! parallel; later combinators (`filter`, `min_by`, `collect`, …) operate
//! sequentially on the already-computed results, which is where rayon
//! itself spends negligible time for the workloads in this repository.
//!
//! Ordering matches rayon's indexed iterators: results come back in input
//! order. Worker panics propagate to the caller. Thread count follows
//! `RAYON_NUM_THREADS` when set, else available parallelism.

use std::env;
use std::thread;

/// Everything callers need via `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Number of worker threads to fan out across.
pub fn current_num_threads() -> usize {
    env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn chunk_len(total: usize, workers: usize) -> usize {
    total.div_ceil(workers.max(1)).max(1)
}

/// Applies `f` to every element of an owned collection on scoped worker
/// threads, preserving input order in the output.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per_chunk = chunk_len(n, workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(per_chunk).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// Runs `f` on every element of a mutable slice across scoped workers.
fn parallel_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        items.iter_mut().for_each(f);
        return;
    }
    let per_chunk = chunk_len(n, workers);
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(per_chunk)
            .map(|chunk| scope.spawn(move || chunk.iter_mut().for_each(f)))
            .collect();
        for h in handles {
            h.join().expect("rayon shim worker panicked");
        }
    });
}

/// Converts a value into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Element type produced.
    type Item: Send;

    /// Starts the parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `.par_iter()` — parallel iteration over `&T`.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Starts the parallel pipeline over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

/// `.par_iter_mut()` — parallel iteration over `&mut T`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutably borrowed element type.
    type Item: Send + 'a;

    /// Starts the parallel pipeline over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send + Sync> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// A parallel iterator over owned (or shared-reference) items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// The parallel stage: applies `f` across worker threads.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParResults<R> {
        ParResults {
            items: parallel_map_vec(self.items, f),
        }
    }

    /// Runs `f` for every item across worker threads.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_vec(self.items, f);
    }

    /// Parallel map discarding `None` results.
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync>(self, f: F) -> ParResults<R> {
        ParResults {
            items: parallel_map_vec(self.items, f)
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Parallel map flattening per-item result collections.
    pub fn flat_map<C, F>(self, f: F) -> ParResults<C::Item>
    where
        C: IntoIterator,
        C::Item: Send,
        C: Send,
        F: Fn(T) -> C + Sync,
    {
        ParResults {
            items: parallel_map_vec(self.items, f)
                .into_iter()
                .flat_map(IntoIterator::into_iter)
                .collect(),
        }
    }
}

/// A parallel iterator over exclusive references.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<T: Send> ParIterMut<'_, T> {
    /// Runs `f` on every element across worker threads.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        parallel_for_each_mut(self.items, f);
    }
}

/// Results of a parallel stage, in input order. Combinators past this
/// point run sequentially over the computed values.
pub struct ParResults<T> {
    items: Vec<T>,
}

impl<T> ParResults<T> {
    /// Gathers results into any collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Keeps results matching the predicate.
    pub fn filter<F: Fn(&T) -> bool>(self, f: F) -> ParResults<T> {
        ParResults {
            items: self.items.into_iter().filter(|x| f(x)).collect(),
        }
    }

    /// Sequential post-map over computed results.
    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParResults<R> {
        ParResults {
            items: self.items.into_iter().map(f).collect(),
        }
    }

    /// Minimum by comparator.
    pub fn min_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, f: F) -> Option<T> {
        self.items.into_iter().min_by(f)
    }

    /// Maximum by comparator.
    pub fn max_by<F: Fn(&T, &T) -> std::cmp::Ordering>(self, f: F) -> Option<T> {
        self.items.into_iter().max_by(f)
    }

    /// Pairwise reduction with an identity for the empty case.
    pub fn reduce<Id: Fn() -> T, F: Fn(T, T) -> T>(self, identity: Id, f: F) -> T {
        self.items.into_iter().fold(identity(), f)
    }

    /// Number of results.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

impl<T> IntoIterator for ParResults<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_input_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows_and_reduces() {
        let data: Vec<u32> = (1..=100).collect();
        let max = data.par_iter().map(|&x| x * x).max_by(|a, b| a.cmp(b));
        assert_eq!(max, Some(10_000));
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let mut data: Vec<u32> = vec![1; 257];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        Vec::<u32>::new().par_iter_mut().for_each(|_| {});
    }

    #[test]
    fn filter_map_and_flat_map() {
        let evens: Vec<u32> = (0u32..20)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 10);
        let doubled: Vec<u32> = (0u32..5).into_par_iter().flat_map(|x| vec![x, x]).collect();
        assert_eq!(doubled, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
    }
}
