//! Multi-application co-location environment: several LS services and
//! several BE applications sharing one power-constrained node.
//!
//! The paper evaluates one LS + one BE per node but notes (§V-B) that
//! "the algorithm can be extended to support multiple LS/BE applications
//! by independently searching the configuration for each application".
//! This module provides the substrate for that extension:
//!
//! * every application gets its own partition (cores, frequency, ways) —
//!   a straightforward generalization of [`sturgeon_simnode::PairConfig`];
//! * each LS service keeps its own queueing model and QoS target;
//! * interference on each LS service aggregates the memory traffic of
//!   *all* BE co-runners (and is shielded by that service's cache share);
//! * node power sums every partition plus the static term, and the budget
//!   generalizes the paper's rule: the power of the node serving all LS
//!   services at their peak loads with the node split evenly among them.

use crate::be::BeAppModel;
use crate::interference::{InterferenceModel, InterferenceParams};
use crate::ls::LsServiceModel;
use serde::Serialize;
use sturgeon_simnode::power::{PartitionLoad, PowerModel};
use sturgeon_simnode::{Allocation, NodeSpec};

/// A partitioning of the node among `ls.len() + be.len()` applications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MultiConfig {
    /// One allocation per LS service (same order as the env's services).
    pub ls: Vec<Allocation>,
    /// One allocation per BE application.
    pub be: Vec<Allocation>,
}

impl MultiConfig {
    /// Validates per-partition sanity and combined footprint.
    pub fn validate(&self, spec: &NodeSpec) -> Result<(), String> {
        let mut cores = 0u32;
        let mut ways = 0u32;
        for a in self.ls.iter().chain(&self.be) {
            a.validate(spec).map_err(|e| e.to_string())?;
            cores += a.cores;
            ways += a.llc_ways;
        }
        if cores > spec.total_cores {
            return Err(format!(
                "{} cores allocated but node has {}",
                cores, spec.total_cores
            ));
        }
        if ways > spec.total_llc_ways {
            return Err(format!(
                "{} ways allocated but node has {}",
                ways, spec.total_llc_ways
            ));
        }
        Ok(())
    }

    /// Total cores across all partitions.
    pub fn total_cores(&self) -> u32 {
        self.ls.iter().chain(&self.be).map(|a| a.cores).sum()
    }

    /// Total ways across all partitions.
    pub fn total_ways(&self) -> u32 {
        self.ls.iter().chain(&self.be).map(|a| a.llc_ways).sum()
    }
}

/// Per-LS-service observation within one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsObservation {
    /// Offered load (QPS).
    pub qps: f64,
    /// Measured p95 latency (ms).
    pub p95_ms: f64,
    /// Fraction of the interval's queries within the service's target.
    pub in_target_fraction: f64,
    /// Core utilization.
    pub utilization: f64,
}

/// One interval's observations across all applications.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiObservation {
    /// Interval end time (s).
    pub t_s: f64,
    /// One entry per LS service.
    pub ls: Vec<LsObservation>,
    /// Normalized throughput per BE application.
    pub be_throughput: Vec<f64>,
    /// Package power (W).
    pub power_w: f64,
}

/// The multi-application node environment.
#[derive(Debug, Clone)]
pub struct MultiColocationEnv {
    spec: NodeSpec,
    power: PowerModel,
    ls: Vec<LsServiceModel>,
    be: Vec<BeAppModel>,
    interference: InterferenceModel,
    budget_w: f64,
    t_s: f64,
}

impl MultiColocationEnv {
    /// Builds the environment. Budget rule: the node split evenly among
    /// the LS services, each at peak load and maximum frequency — the
    /// natural generalization of the paper's single-service budget.
    pub fn new(
        spec: NodeSpec,
        power: PowerModel,
        ls: Vec<LsServiceModel>,
        be: Vec<BeAppModel>,
        interference: InterferenceParams,
        seed: u64,
    ) -> Self {
        assert!(!ls.is_empty(), "at least one LS service");
        assert!(!be.is_empty(), "at least one BE application");
        let budget_w = Self::budget(&spec, &power, &ls);
        Self {
            spec,
            power,
            ls,
            be,
            interference: InterferenceModel::new(interference, seed),
            budget_w,
            t_s: 0.0,
        }
    }

    fn budget(spec: &NodeSpec, power: &PowerModel, ls: &[LsServiceModel]) -> f64 {
        let n = ls.len() as u32;
        let share_cores = spec.total_cores / n;
        let share_ways = spec.total_llc_ways / n;
        let f = spec.max_freq_ghz();
        let mut loads = Vec::with_capacity(ls.len());
        for m in ls {
            let lat = m.latency(
                share_cores.max(1),
                f,
                share_ways.max(1),
                m.params.peak_qps,
                1.0,
            );
            loads.push(PartitionLoad {
                cores: share_cores.max(1),
                freq_ghz: f,
                activity: m.params.activity,
                utilization: m.power_utilization(lat.utilization.min(1.0)),
            });
        }
        power.node_power_w(&loads)
    }

    /// The power budget (W).
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// The node spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The LS service models, in partition order.
    pub fn ls_models(&self) -> &[LsServiceModel] {
        &self.ls
    }

    /// The BE application models, in partition order.
    pub fn be_models(&self) -> &[BeAppModel] {
        &self.be
    }

    /// Static/uncore power (W).
    pub fn static_power_w(&self) -> f64 {
        self.power.static_w
    }

    /// Ground-truth LS partition power at a load (interference-free).
    pub fn ls_partition_power(&self, idx: usize, alloc: &Allocation, qps: f64) -> f64 {
        let m = &self.ls[idx];
        let f = alloc.freq_ghz(&self.spec);
        let lat = m.latency(alloc.cores, f, alloc.llc_ways, qps, 1.0);
        self.power.partition_power_w(&PartitionLoad {
            cores: alloc.cores,
            freq_ghz: f,
            activity: m.params.activity,
            utilization: m.power_utilization(lat.utilization),
        })
    }

    /// Ground-truth BE partition power.
    pub fn be_partition_power(&self, idx: usize, alloc: &Allocation) -> f64 {
        self.power.partition_power_w(&PartitionLoad {
            cores: alloc.cores,
            freq_ghz: alloc.freq_ghz(&self.spec),
            activity: self.be[idx].params.activity,
            utilization: 1.0,
        })
    }

    /// Ground-truth total node power for a configuration and LS loads.
    pub fn total_power(&self, config: &MultiConfig, qps: &[f64]) -> f64 {
        let ls_sum: f64 = config
            .ls
            .iter()
            .enumerate()
            .map(|(i, a)| self.ls_partition_power(i, a, qps[i]))
            .sum();
        let be_sum: f64 = config
            .be
            .iter()
            .enumerate()
            .map(|(i, a)| self.be_partition_power(i, a))
            .sum();
        self.static_power_w() + ls_sum + be_sum
    }

    /// Combined memory traffic of all BE partitions.
    fn total_be_traffic(&self, config: &MultiConfig) -> f64 {
        config
            .be
            .iter()
            .enumerate()
            .map(|(i, a)| self.be[i].memory_traffic(a.cores, a.freq_ghz(&self.spec), a.llc_ways))
            .sum()
    }

    /// Delivered (contended) throughput of every BE partition: the solo
    /// model rate degraded by the *other* BE partitions' memory traffic.
    ///
    /// Memory bandwidth is unmanaged, so a BE app suffers from its
    /// co-runners exactly as the LS service does — this is the signal the
    /// co-runner *set* scorer is trained on. The per-app solo models (and
    /// the lattices flattened from them) deliberately do not know about
    /// this term; the gap between modeled and delivered throughput is what
    /// a learned set score recovers.
    pub fn contended_be_throughput(&self, config: &MultiConfig) -> Vec<f64> {
        let coupling = self.interference.params().be_bw_coupling;
        let traffic: Vec<f64> = config
            .be
            .iter()
            .enumerate()
            .map(|(i, a)| self.be[i].memory_traffic(a.cores, a.freq_ghz(&self.spec), a.llc_ways))
            .collect();
        let total: f64 = traffic.iter().sum();
        config
            .be
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let solo =
                    self.be[i].normalized_throughput(a.cores, a.freq_ghz(&self.spec), a.llc_ways);
                let co_traffic = (total - traffic[i]).max(0.0);
                solo / (1.0 + coupling * co_traffic)
            })
            .collect()
    }

    /// Simulates one monitoring interval.
    ///
    /// `qps[i]` is the offered load of LS service `i`.
    pub fn step(&mut self, config: &MultiConfig, qps: &[f64]) -> MultiObservation {
        assert_eq!(qps.len(), self.ls.len(), "one load per LS service");
        debug_assert!(config.validate(&self.spec).is_ok());
        assert_eq!(config.ls.len(), self.ls.len());
        assert_eq!(config.be.len(), self.be.len());
        self.t_s += 1.0;

        let traffic = self.total_be_traffic(config);
        let mut ls_obs = Vec::with_capacity(self.ls.len());
        for (i, model) in self.ls.iter().enumerate() {
            let alloc = &config.ls[i];
            let ways_fraction = alloc.llc_ways as f64 / self.spec.total_llc_ways as f64;
            // One shared jitter draw per interval would correlate the
            // services; per-service draws model independent OS noise.
            let disturbance =
                self.interference
                    .step(traffic, ways_fraction, model.params.bw_sensitivity);
            let lat = model.latency_disturbed(
                alloc.cores,
                alloc.freq_ghz(&self.spec),
                alloc.llc_ways,
                qps[i],
                disturbance.multiplier,
                disturbance.additive_ms,
            );
            ls_obs.push(LsObservation {
                qps: qps[i],
                p95_ms: lat.p95_ms,
                in_target_fraction: lat.in_target_fraction,
                utilization: lat.utilization,
            });
        }

        let be_throughput = self.contended_be_throughput(config);

        MultiObservation {
            t_s: self.t_s,
            ls: ls_obs,
            be_throughput,
            power_w: self.total_power(config, qps),
        }
    }

    /// Interference-free probe (profiling mode).
    pub fn profile_ls(&self, idx: usize, alloc: &Allocation, qps: f64) -> LsObservation {
        let m = &self.ls[idx];
        let lat = m.latency(
            alloc.cores,
            alloc.freq_ghz(&self.spec),
            alloc.llc_ways,
            qps,
            1.0,
        );
        LsObservation {
            qps,
            p95_ms: lat.p95_ms,
            in_target_fraction: lat.in_target_fraction,
            utilization: lat.utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{be_app, ls_service, BeAppId, LsServiceId};

    fn env() -> MultiColocationEnv {
        MultiColocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            vec![
                ls_service(LsServiceId::Xapian),
                ls_service(LsServiceId::ImgDnn),
            ],
            vec![be_app(BeAppId::Raytrace), be_app(BeAppId::Swaptions)],
            InterferenceParams::none(),
            0,
        )
    }

    fn cfg() -> MultiConfig {
        MultiConfig {
            ls: vec![Allocation::new(5, 8, 6), Allocation::new(5, 8, 6)],
            be: vec![Allocation::new(6, 5, 4), Allocation::new(4, 5, 4)],
        }
    }

    #[test]
    fn valid_config_accepted_oversubscription_rejected() {
        let e = env();
        assert!(cfg().validate(e.spec()).is_ok());
        let mut bad = cfg();
        bad.be[0].cores = 12; // 5+5+12+4 = 26 > 20
        assert!(bad.validate(e.spec()).is_err());
    }

    #[test]
    fn step_reports_per_app_observations() {
        let mut e = env();
        let obs = e.step(&cfg(), &[700.0, 600.0]);
        assert_eq!(obs.ls.len(), 2);
        assert_eq!(obs.be_throughput.len(), 2);
        assert!(obs.power_w > 0.0);
        assert!(obs.ls.iter().all(|o| o.p95_ms > 0.0));
        assert!(obs.be_throughput.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn budget_is_plausible() {
        let e = env();
        assert!((40.0..150.0).contains(&e.budget_w()), "{}", e.budget_w());
    }

    #[test]
    fn power_decomposes_per_partition() {
        let e = env();
        let c = cfg();
        let qps = [700.0, 600.0];
        let expected = e.static_power_w()
            + e.ls_partition_power(0, &c.ls[0], qps[0])
            + e.ls_partition_power(1, &c.ls[1], qps[1])
            + e.be_partition_power(0, &c.be[0])
            + e.be_partition_power(1, &c.be[1]);
        assert!((e.total_power(&c, &qps) - expected).abs() < 1e-9);
    }

    #[test]
    fn starving_one_service_hurts_only_it() {
        let mut e = env();
        let mut c = cfg();
        // Starve LS #0 (1 core at min frequency), keep LS #1 healthy.
        c.ls[0] = Allocation::new(1, 0, 2);
        c.ls[1] = Allocation::new(9, 8, 10);
        let obs = e.step(&c, &[1_400.0, 600.0]);
        assert!(obs.ls[0].p95_ms > e.ls_models()[0].params.qos_target_ms);
        assert!(obs.ls[1].p95_ms <= e.ls_models()[1].params.qos_target_ms);
    }

    #[test]
    fn more_be_traffic_more_interference_on_ls() {
        // Compare LS latency with tiny vs huge BE partitions, with the
        // deterministic bandwidth term only.
        let mk = |be_cores: u32| {
            let mut e = MultiColocationEnv::new(
                NodeSpec::xeon_e5_2630_v4(),
                PowerModel::default(),
                vec![ls_service(LsServiceId::Xapian)],
                vec![be_app(BeAppId::Fluidanimate)],
                InterferenceParams {
                    spike_probability: 0.0,
                    ..InterferenceParams::default()
                },
                0,
            );
            let c = MultiConfig {
                ls: vec![Allocation::new(6, 8, 6)],
                be: vec![Allocation::new(be_cores, 9, 10)],
            };
            e.step(&c, &[1_000.0]).ls[0].p95_ms
        };
        assert!(mk(13) > mk(2), "more BE cores must mean more interference");
    }

    #[test]
    fn be_co_runners_degrade_each_other() {
        let mk = |interference| {
            let mut e = MultiColocationEnv::new(
                NodeSpec::xeon_e5_2630_v4(),
                PowerModel::default(),
                vec![ls_service(LsServiceId::Xapian)],
                vec![be_app(BeAppId::Raytrace), be_app(BeAppId::Fluidanimate)],
                interference,
                0,
            );
            let c = MultiConfig {
                ls: vec![Allocation::new(6, 8, 6)],
                be: vec![Allocation::new(7, 5, 6), Allocation::new(7, 5, 6)],
            };
            e.step(&c, &[1_000.0]).be_throughput
        };
        let quiet = mk(InterferenceParams::none());
        let contended = mk(InterferenceParams {
            spike_probability: 0.0,
            ..InterferenceParams::default()
        });
        // Zero coupling reproduces the solo model rates; the default
        // coupling strictly degrades both co-runners.
        for (q, c) in quiet.iter().zip(&contended) {
            assert!(c < q, "contended {c} must be below solo {q}");
        }
        // The model-vs-delivered gap is what the set scorer learns; it
        // must be material at default coupling.
        let ratio = contended[0] / quiet[0];
        assert!((0.5..0.99).contains(&ratio), "contraction ratio {ratio}");
    }

    #[test]
    fn profile_is_interference_free() {
        let e = env();
        let a = e.profile_ls(0, &Allocation::new(6, 8, 8), 700.0);
        let b = e.profile_ls(0, &Allocation::new(6, 8, 8), 700.0);
        assert_eq!(a, b);
    }
}
