//! Best-effort application models (the six PARSEC benchmarks).
//!
//! Ground-truth throughput combines three separable effects:
//!
//! ```text
//! rate(c, f, w) = amdahl(c) · (f / f_max)^φ · cache_factor(w)
//! ```
//!
//! * `amdahl(c) = 1 / ((1−p) + p/c)` — thread scalability with per-app
//!   parallel fraction `p` (ferret's pipeline scales almost perfectly,
//!   fluidanimate's neighbour synchronization does not);
//! * `(f/f_max)^φ` — frequency sensitivity (compute-bound blackscholes
//!   and swaptions have φ ≈ 1, memory-bound codes stall on DRAM and gain
//!   less from clock speed);
//! * `cache_factor(w)` — LLC miss curve (streaming codes barely notice
//!   cache loss, ferret/facesim working sets do).
//!
//! This heterogeneity is precisely what makes co-location "preference
//! aware" worthwhile: given the same power headroom, one app wants cores
//! and another wants gigahertz (paper Fig. 3).

use serde::Serialize;

/// Calibration constants for one BE application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BeAppParams {
    /// Application name (e.g. "blackscholes").
    pub name: &'static str,
    /// Amdahl parallel fraction `p` in `[0, 1)`.
    pub parallel_fraction: f64,
    /// Throughput sensitivity to frequency: rate ∝ f^φ.
    pub freq_exponent: f64,
    /// LLC ways beyond which the app gains nothing.
    pub cache_sat_ways: u32,
    /// Relative throughput lost when squeezed to one way.
    pub cache_penalty: f64,
    /// Power activity factor (BE codes keep their pipelines busy).
    pub activity: f64,
    /// Relative memory traffic generated at full tilt — the coupling
    /// knob for interference on the co-located LS service.
    pub traffic_factor: f64,
    /// PARSEC input-set level (0 = test … 5 = native); scales total work.
    pub input_level: u32,
}

impl BeAppParams {
    /// The app's effective pairwise-contention coefficient σ for the
    /// closed-form co-runner score `k / (1 + σ·(k − 1))`, derived from
    /// the same calibration knob that drives interference on the LS
    /// service ([`traffic_factor`](Self::traffic_factor)). The 0.625
    /// scale is calibrated so raytrace (traffic 0.40) lands exactly on
    /// the fleet's legacy global default σ = 0.25.
    pub fn contention_sigma(&self) -> f64 {
        (0.625 * self.traffic_factor).clamp(0.0, 1.0)
    }
}

/// A BE application instance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BeAppModel {
    /// Calibration constants.
    pub params: BeAppParams,
    /// Node maximum frequency (GHz) for normalization.
    pub max_freq_ghz: f64,
    /// Node core count for solo-run normalization.
    pub total_cores: u32,
    /// Node way count for solo-run normalization.
    pub total_ways: u32,
}

impl BeAppModel {
    /// Creates a model over a node with the given ceiling resources.
    pub fn new(params: BeAppParams, max_freq_ghz: f64, total_cores: u32, total_ways: u32) -> Self {
        Self {
            params,
            max_freq_ghz,
            total_cores,
            total_ways,
        }
    }

    /// Amdahl speedup at `c` cores (relative to one core).
    pub fn amdahl(&self, cores: u32) -> f64 {
        let p = self.params.parallel_fraction;
        let c = cores.max(1) as f64;
        1.0 / ((1.0 - p) + p / c)
    }

    /// Multiplicative throughput factor from the LLC share, in `(0, 1]`.
    pub fn cache_factor(&self, ways: u32) -> f64 {
        let sat = self.params.cache_sat_ways.max(2);
        if ways >= sat {
            return 1.0;
        }
        let deficit = (sat - ways.max(1)) as f64 / (sat - 1) as f64;
        (1.0 - self.params.cache_penalty * deficit.powf(1.5)).max(0.05)
    }

    /// Absolute throughput rate (work units/s, arbitrary scale).
    pub fn rate(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let f = (freq_ghz / self.max_freq_ghz).max(1e-3);
        self.amdahl(cores) * f.powf(self.params.freq_exponent) * self.cache_factor(ways)
    }

    /// Throughput normalized to the solo run on the whole node at max
    /// frequency — the y-axis of the paper's Figs. 3 and 10.
    pub fn normalized_throughput(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        let solo = self.rate(self.total_cores, self.max_freq_ghz, self.total_ways);
        self.rate(cores, freq_ghz, ways) / solo
    }

    /// Instructions-per-cycle proxy: useful work per core-cycle. This is
    /// the metric the paper's BE performance models are trained on (§V-A).
    pub fn ipc(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let cycles = cores as f64 * (freq_ghz / self.max_freq_ghz);
        self.rate(cores, freq_ghz, ways) / cycles
    }

    /// Memory traffic pressure this app exerts on the shared memory
    /// system, in `[0, 1]`-ish units: more cores, higher frequency and a
    /// smaller cache share (more misses) all raise it.
    pub fn memory_traffic(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let drive = (cores as f64 / self.total_cores as f64) * (freq_ghz / self.max_freq_ghz);
        // Lost cache hits turn into memory traffic: 1 at full cache,
        // up to 2 when squeezed.
        let miss_amp = 2.0 - self.cache_factor(ways);
        (self.params.traffic_factor * drive * miss_amp).min(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{be_apps, BeAppId};

    fn app(id: BeAppId) -> BeAppModel {
        be_apps()
            .into_iter()
            .find(|m| m.params.name == id.name())
            .unwrap()
    }

    #[test]
    fn amdahl_monotone_with_diminishing_returns() {
        let m = app(BeAppId::Blackscholes);
        let mut prev = 0.0;
        let mut prev_gain = f64::INFINITY;
        for c in 1..=20 {
            let s = m.amdahl(c);
            assert!(s > prev);
            let gain = s - prev;
            assert!(gain <= prev_gain + 1e-9, "marginal core gain must shrink");
            prev_gain = gain;
            prev = s;
        }
    }

    #[test]
    fn solo_normalization_is_one() {
        for m in be_apps() {
            let t = m.normalized_throughput(20, 2.2, 20);
            assert!((t - 1.0).abs() < 1e-12, "{}: {t}", m.params.name);
        }
    }

    #[test]
    fn throughput_monotone_in_each_resource() {
        for m in be_apps() {
            assert!(m.rate(8, 2.0, 10) < m.rate(12, 2.0, 10));
            assert!(m.rate(8, 1.6, 10) < m.rate(8, 2.0, 10));
            assert!(m.rate(8, 2.0, 2) <= m.rate(8, 2.0, 10));
        }
    }

    #[test]
    fn zero_cores_zero_rate() {
        let m = app(BeAppId::Ferret);
        assert_eq!(m.rate(0, 2.2, 10), 0.0);
        assert_eq!(m.ipc(0, 2.2, 10), 0.0);
        assert_eq!(m.memory_traffic(0, 2.2, 10), 0.0);
    }

    #[test]
    fn cache_factor_bounded() {
        for m in be_apps() {
            for w in 1..=20 {
                let cf = m.cache_factor(w);
                assert!((0.05..=1.0).contains(&cf), "{} w={w}: {cf}", m.params.name);
            }
            assert_eq!(m.cache_factor(20), 1.0);
        }
    }

    #[test]
    fn ferret_scales_better_than_fluidanimate() {
        // The paper's core-preferring app vs a sync-bound one.
        let fe = app(BeAppId::Ferret);
        let fd = app(BeAppId::Fluidanimate);
        let fe_gain = fe.amdahl(16) / fe.amdahl(8);
        let fd_gain = fd.amdahl(16) / fd.amdahl(8);
        assert!(fe_gain > fd_gain);
    }

    #[test]
    fn blackscholes_more_frequency_sensitive_than_fluidanimate() {
        let bs = app(BeAppId::Blackscholes);
        let fd = app(BeAppId::Fluidanimate);
        let bs_gain = bs.rate(8, 2.2, 10) / bs.rate(8, 1.4, 10);
        let fd_gain = fd.rate(8, 2.2, 10) / fd.rate(8, 1.4, 10);
        assert!(bs_gain > fd_gain);
    }

    #[test]
    fn ipc_decreases_with_contention_for_cache() {
        let fe = app(BeAppId::Ferret);
        assert!(fe.ipc(8, 2.0, 2) < fe.ipc(8, 2.0, 12));
    }

    #[test]
    fn memory_traffic_rises_when_cache_shrinks() {
        let fd = app(BeAppId::Fluidanimate);
        assert!(fd.memory_traffic(12, 2.2, 2) > fd.memory_traffic(12, 2.2, 14));
    }

    #[test]
    fn contention_sigma_calibrated_to_traffic() {
        // Raytrace's σ must land exactly on the fleet's legacy global
        // default (0.25), and σ must order apps by memory traffic.
        assert_eq!(app(BeAppId::Raytrace).params.contention_sigma(), 0.25);
        let sigma = |id| app(id).params.contention_sigma();
        assert!(sigma(BeAppId::Fluidanimate) > sigma(BeAppId::Raytrace));
        assert!(sigma(BeAppId::Raytrace) > sigma(BeAppId::Swaptions));
        for m in be_apps() {
            assert!((0.0..=1.0).contains(&m.params.contention_sigma()));
        }
    }

    #[test]
    fn memory_traffic_rises_with_cores_and_freq() {
        let fd = app(BeAppId::Fluidanimate);
        assert!(fd.memory_traffic(16, 2.2, 10) > fd.memory_traffic(8, 2.2, 10));
        assert!(fd.memory_traffic(8, 2.2, 10) > fd.memory_traffic(8, 1.4, 10));
    }
}
