//! Open-loop load generation for LS services.
//!
//! LS services experience a diurnal pattern (§II-B); the paper's
//! evaluation drives each service with a fluctuating load that climbs
//! from 20% to 80% of peak and back (§VII-A), and the Fig. 11 case study
//! uses a 20%→50% ramp.

use serde::{Deserialize, Serialize};

/// A deterministic load profile: maps time to a fraction of peak load.
///
/// ```
/// use sturgeon_workloads::loadgen::LoadProfile;
///
/// let load = LoadProfile::paper_fluctuating(600.0); // 20% → 80% → 20%
/// assert!((load.fraction_at(0.0) - 0.2).abs() < 1e-12);
/// assert!((load.fraction_at(300.0) - 0.8).abs() < 1e-12);
/// assert_eq!(load.qps_at(300.0, 60_000.0), 48_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadProfile {
    /// Constant fraction of peak.
    Constant {
        /// Load fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Linear ramp between two fractions over a duration, then hold.
    Ramp {
        /// Starting fraction.
        from: f64,
        /// Final fraction.
        to: f64,
        /// Seconds over which the ramp runs.
        duration_s: f64,
    },
    /// The paper's evaluation load: rise `low → high` over the first half
    /// of the period, fall back over the second half, repeating.
    Triangle {
        /// Trough fraction (paper: 0.2).
        low: f64,
        /// Crest fraction (paper: 0.8).
        high: f64,
        /// Full up-down period in seconds.
        period_s: f64,
    },
    /// A smooth 24-hour-like pattern: sinusoid between `low` and `high`
    /// with the crest at half period ("load reaches the maximum near
    /// midday and the lowest during night").
    Diurnal {
        /// Night-time trough fraction.
        low: f64,
        /// Midday crest fraction.
        high: f64,
        /// Length of the simulated day in seconds.
        day_s: f64,
    },
    /// Step change at a given time (for disturbance-rejection tests).
    Step {
        /// Fraction before the step.
        before: f64,
        /// Fraction after the step.
        after: f64,
        /// Step time in seconds.
        at_s: f64,
    },
    /// Replay of a recorded trace: load fractions sampled every `dt_s`
    /// seconds, linearly interpolated, holding the last sample afterwards.
    Trace {
        /// Fraction-of-peak samples (clamped to `[0, 1]` on evaluation).
        samples: Vec<f64>,
        /// Spacing between samples in seconds.
        dt_s: f64,
    },
    /// A flash crowd layered on a base profile: the load multiplier
    /// ramps from 1 to `magnitude` over `ramp_s`, holds for `hold_s`,
    /// then decays back to 1 over `decay_s` (the trace shape of a viral
    /// event or a retry storm). The product is still clamped to `[0, 1]`
    /// of peak.
    FlashCrowd {
        /// The everyday load underneath the event.
        base: Box<LoadProfile>,
        /// Event start time (s).
        at_s: f64,
        /// Seconds from onset to full magnitude.
        ramp_s: f64,
        /// Seconds held at full magnitude.
        hold_s: f64,
        /// Seconds to decay back to the base load.
        decay_s: f64,
        /// Peak load multiplier (≥ 1 to model a surge).
        magnitude: f64,
    },
    /// A regional failover layered on a base profile. The `Failing`
    /// role's load drops to zero for `outage_s` seconds starting at
    /// `at_s`; the `Survivor` role absorbs the spill, serving
    /// `base × (1 + takeover)` for the same window.
    Failover {
        /// The steady-state regional load.
        base: Box<LoadProfile>,
        /// Outage start time (s).
        at_s: f64,
        /// Outage duration (s).
        outage_s: f64,
        /// Extra load fraction shifted onto each surviving region
        /// during the outage.
        takeover: f64,
        /// Which side of the failover this region plays.
        role: FailoverRole,
    },
}

/// Which side of a [`LoadProfile::Failover`] a region plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailoverRole {
    /// The region that goes dark during the outage window.
    Failing,
    /// A region that absorbs the failed region's traffic.
    Survivor,
}

impl LoadProfile {
    /// The paper's §VII-A fluctuating input: 20% → 80% → 20% of peak.
    pub fn paper_fluctuating(period_s: f64) -> Self {
        LoadProfile::Triangle {
            low: 0.2,
            high: 0.8,
            period_s,
        }
    }

    /// The Fig. 11 case-study ramp: 20% → 50% of peak.
    pub fn fig11_ramp(duration_s: f64) -> Self {
        LoadProfile::Ramp {
            from: 0.2,
            to: 0.5,
            duration_s,
        }
    }

    /// Parses a trace from newline-separated fractions (comments with `#`
    /// and blank lines ignored) — the format dumped by fleet telemetry
    /// exports. Returns `None` when no valid sample is present.
    pub fn trace_from_text(text: &str, dt_s: f64) -> Option<Self> {
        let samples: Vec<f64> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| l.parse::<f64>().ok())
            .collect();
        if samples.is_empty() || dt_s <= 0.0 {
            return None;
        }
        Some(LoadProfile::Trace { samples, dt_s })
    }

    /// Canonical lowercase profile name, used by trace/metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            LoadProfile::Constant { .. } => "constant",
            LoadProfile::Ramp { .. } => "ramp",
            LoadProfile::Triangle { .. } => "triangle",
            LoadProfile::Diurnal { .. } => "diurnal",
            LoadProfile::Step { .. } => "step",
            LoadProfile::Trace { .. } => "trace",
            LoadProfile::FlashCrowd { .. } => "flash_crowd",
            LoadProfile::Failover { .. } => "failover",
        }
    }

    /// Load fraction at time `t_s`, always clamped to `[0, 1]`.
    pub fn fraction_at(&self, t_s: f64) -> f64 {
        let t = t_s.max(0.0);
        let f = match self {
            &LoadProfile::Constant { fraction } => fraction,
            &LoadProfile::Ramp {
                from,
                to,
                duration_s,
            } => {
                if duration_s <= 0.0 || t >= duration_s {
                    to
                } else {
                    from + (to - from) * (t / duration_s)
                }
            }
            &LoadProfile::Triangle {
                low,
                high,
                period_s,
            } => {
                if period_s <= 0.0 {
                    low
                } else {
                    let phase = (t % period_s) / period_s; // 0..1
                    let tri = if phase < 0.5 {
                        phase * 2.0
                    } else {
                        2.0 - phase * 2.0
                    };
                    low + (high - low) * tri
                }
            }
            &LoadProfile::Diurnal { low, high, day_s } => {
                if day_s <= 0.0 {
                    low
                } else {
                    let phase = (t % day_s) / day_s;
                    let s = 0.5 - 0.5 * (std::f64::consts::TAU * phase).cos();
                    low + (high - low) * s
                }
            }
            &LoadProfile::Step {
                before,
                after,
                at_s,
            } => {
                if t < at_s {
                    before
                } else {
                    after
                }
            }
            LoadProfile::Trace { samples, dt_s } => {
                let dt_s = *dt_s;
                if samples.is_empty() || dt_s <= 0.0 {
                    0.0
                } else {
                    let pos = t / dt_s;
                    let i = pos.floor() as usize;
                    if i + 1 >= samples.len() {
                        *samples.last().expect("non-empty")
                    } else {
                        let frac = pos - i as f64;
                        samples[i] * (1.0 - frac) + samples[i + 1] * frac
                    }
                }
            }
            LoadProfile::FlashCrowd {
                base,
                at_s,
                ramp_s,
                hold_s,
                decay_s,
                magnitude,
            } => {
                let since = t - at_s;
                let surge = magnitude - 1.0;
                let mult = if since < 0.0 {
                    1.0
                } else if since < *ramp_s {
                    1.0 + surge * (since / ramp_s)
                } else if since < ramp_s + hold_s {
                    *magnitude
                } else if since < ramp_s + hold_s + decay_s {
                    let into_decay = since - ramp_s - hold_s;
                    *magnitude - surge * (into_decay / decay_s)
                } else {
                    1.0
                };
                base.fraction_at(t) * mult
            }
            LoadProfile::Failover {
                base,
                at_s,
                outage_s,
                takeover,
                role,
            } => {
                let in_outage = t >= *at_s && t < at_s + outage_s;
                match (role, in_outage) {
                    (FailoverRole::Failing, true) => 0.0,
                    (FailoverRole::Survivor, true) => base.fraction_at(t) * (1.0 + takeover),
                    (_, false) => base.fraction_at(t),
                }
            }
        };
        f.clamp(0.0, 1.0)
    }

    /// QPS at time `t_s` for a service with the given peak.
    pub fn qps_at(&self, t_s: f64, peak_qps: f64) -> f64 {
        self.fraction_at(t_s) * peak_qps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let p = LoadProfile::Constant { fraction: 0.35 };
        assert_eq!(p.fraction_at(0.0), 0.35);
        assert_eq!(p.fraction_at(1e6), 0.35);
    }

    #[test]
    fn ramp_interpolates_then_holds() {
        let p = LoadProfile::Ramp {
            from: 0.2,
            to: 0.5,
            duration_s: 100.0,
        };
        assert!((p.fraction_at(0.0) - 0.2).abs() < 1e-12);
        assert!((p.fraction_at(50.0) - 0.35).abs() < 1e-12);
        assert!((p.fraction_at(100.0) - 0.5).abs() < 1e-12);
        assert!((p.fraction_at(500.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_peaks_at_half_period() {
        let p = LoadProfile::paper_fluctuating(600.0);
        assert!((p.fraction_at(0.0) - 0.2).abs() < 1e-12);
        assert!((p.fraction_at(300.0) - 0.8).abs() < 1e-12);
        assert!((p.fraction_at(600.0) - 0.2).abs() < 1e-12);
        // Symmetric rise/fall.
        assert!((p.fraction_at(150.0) - p.fraction_at(450.0)).abs() < 1e-12);
    }

    #[test]
    fn diurnal_trough_and_crest() {
        let p = LoadProfile::Diurnal {
            low: 0.1,
            high: 0.9,
            day_s: 86_400.0,
        };
        assert!((p.fraction_at(0.0) - 0.1).abs() < 1e-9);
        assert!((p.fraction_at(43_200.0) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn step_switches_at_time() {
        let p = LoadProfile::Step {
            before: 0.2,
            after: 0.7,
            at_s: 10.0,
        };
        assert_eq!(p.fraction_at(9.999), 0.2);
        assert_eq!(p.fraction_at(10.0), 0.7);
    }

    #[test]
    fn qps_scales_with_peak() {
        let p = LoadProfile::Constant { fraction: 0.2 };
        assert!((p.qps_at(0.0, 60_000.0) - 12_000.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_always_clamped() {
        let p = LoadProfile::Ramp {
            from: -0.5,
            to: 1.5,
            duration_s: 10.0,
        };
        for t in 0..20 {
            let f = p.fraction_at(t as f64);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn trace_interpolates_and_holds() {
        let p = LoadProfile::Trace {
            samples: vec![0.2, 0.4, 0.8],
            dt_s: 10.0,
        };
        assert!((p.fraction_at(0.0) - 0.2).abs() < 1e-12);
        assert!((p.fraction_at(5.0) - 0.3).abs() < 1e-12);
        assert!((p.fraction_at(10.0) - 0.4).abs() < 1e-12);
        assert!((p.fraction_at(15.0) - 0.6).abs() < 1e-12);
        // Past the end: hold the last sample.
        assert!((p.fraction_at(100.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn trace_from_text_skips_comments_and_garbage() {
        let text = "# fleet export\n0.2\n\n0.5\nnot-a-number\n0.9\n";
        let p = LoadProfile::trace_from_text(text, 60.0).expect("parses");
        match &p {
            LoadProfile::Trace { samples, dt_s } => {
                assert_eq!(samples, &vec![0.2, 0.5, 0.9]);
                assert_eq!(*dt_s, 60.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(LoadProfile::trace_from_text("# only comments\n", 60.0).is_none());
        assert!(LoadProfile::trace_from_text("0.5", 0.0).is_none());
    }

    #[test]
    fn degenerate_periods_safe() {
        let p = LoadProfile::Triangle {
            low: 0.3,
            high: 0.9,
            period_s: 0.0,
        };
        assert_eq!(p.fraction_at(5.0), 0.3);
    }

    #[test]
    fn flash_crowd_ramps_holds_and_decays() {
        let p = LoadProfile::FlashCrowd {
            base: Box::new(LoadProfile::Constant { fraction: 0.3 }),
            at_s: 100.0,
            ramp_s: 10.0,
            hold_s: 20.0,
            decay_s: 10.0,
            magnitude: 2.0,
        };
        assert!((p.fraction_at(0.0) - 0.3).abs() < 1e-12, "before the event");
        assert!((p.fraction_at(105.0) - 0.45).abs() < 1e-12, "mid-ramp");
        assert!((p.fraction_at(120.0) - 0.6).abs() < 1e-12, "held at 2x");
        assert!((p.fraction_at(135.0) - 0.45).abs() < 1e-12, "mid-decay");
        assert!((p.fraction_at(200.0) - 0.3).abs() < 1e-12, "after decay");
        assert_eq!(p.name(), "flash_crowd");
        // A surge past peak saturates instead of overflowing.
        let hot = LoadProfile::FlashCrowd {
            base: Box::new(LoadProfile::Constant { fraction: 0.8 }),
            at_s: 0.0,
            ramp_s: 1.0,
            hold_s: 10.0,
            decay_s: 1.0,
            magnitude: 3.0,
        };
        assert_eq!(hot.fraction_at(5.0), 1.0);
    }

    #[test]
    fn failover_roles_mirror_each_other() {
        let base = Box::new(LoadProfile::Constant { fraction: 0.4 });
        let failing = LoadProfile::Failover {
            base: base.clone(),
            at_s: 50.0,
            outage_s: 30.0,
            takeover: 0.5,
            role: FailoverRole::Failing,
        };
        let survivor = LoadProfile::Failover {
            base,
            at_s: 50.0,
            outage_s: 30.0,
            takeover: 0.5,
            role: FailoverRole::Survivor,
        };
        // Before and after the outage both serve the base load.
        for t in [0.0, 49.9, 80.0, 200.0] {
            assert!((failing.fraction_at(t) - 0.4).abs() < 1e-12, "t={t}");
            assert!((survivor.fraction_at(t) - 0.4).abs() < 1e-12, "t={t}");
        }
        // During the outage the failing region goes dark and the
        // survivor serves base × 1.5.
        assert_eq!(failing.fraction_at(60.0), 0.0);
        assert!((survivor.fraction_at(60.0) - 0.6).abs() < 1e-12);
        assert_eq!(failing.name(), "failover");
    }
}
