//! Unmanaged-resource interference: the disturbance Algorithm 2 rejects.
//!
//! Cores, LLC ways and frequency are *managed* (partitioned) resources.
//! Memory bandwidth is not, and neither are OS-level effects (interrupt
//! handling, kernel threads, TLB shootdowns). The paper's balancer exists
//! precisely because the predictor cannot foresee these (§IV, §VI).
//!
//! Two components:
//!
//! * **Bandwidth pressure** — deterministic coupling from the BE
//!   co-runner: its memory traffic inflates the LS service time, shielded
//!   in part by the LS service's own LLC share (more ways → higher hit
//!   rate → fewer DRAM-bound accesses exposed to contention). This is why
//!   "harvesting cache space indirectly regulates memory bandwidth"
//!   (§VII-C) works in our reproduction exactly as in the paper.
//! * **OS jitter** — random multiplicative latency spikes with a
//!   geometric duration, modelling interrupt storms and background
//!   daemons. Seeded, so every experiment is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunables for the interference process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceParams {
    /// Scales BE memory traffic into LS service-time inflation.
    pub bw_coupling: f64,
    /// Scales BE memory traffic into an *additive* tail-latency term (ms):
    /// queueing on the memory controller and OS-level delays add to the
    /// response time directly rather than stretching every request.
    pub additive_coupling_ms: f64,
    /// Scales a BE application's *co-runners'* memory traffic into its own
    /// throughput loss (multi-app nodes only; the paper's single LS+BE
    /// pair has no BE co-runner). This is the unmanaged-resource coupling
    /// the co-runner *set* scorer learns from multi-env step outcomes.
    pub be_bw_coupling: f64,
    /// Per-interval probability that an OS jitter burst starts.
    pub spike_probability: f64,
    /// Per-interval probability that an ongoing burst ends.
    pub spike_end_probability: f64,
    /// Multiplicative latency inflation range while a burst is active.
    pub spike_magnitude: (f64, f64),
}

impl Default for InterferenceParams {
    fn default() -> Self {
        Self {
            bw_coupling: 0.20,
            additive_coupling_ms: 33.0,
            be_bw_coupling: 0.40,
            spike_probability: 0.02,
            spike_end_probability: 0.5,
            spike_magnitude: (1.10, 1.5),
        }
    }
}

impl InterferenceParams {
    /// A quiet environment (profiling on a dedicated cluster, §V-A: the
    /// offline training data is collected without co-location noise).
    pub fn none() -> Self {
        Self {
            bw_coupling: 0.0,
            additive_coupling_ms: 0.0,
            be_bw_coupling: 0.0,
            spike_probability: 0.0,
            spike_end_probability: 1.0,
            spike_magnitude: (1.0, 1.0),
        }
    }
}

/// The disturbance applied to one monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disturbance {
    /// Multiplicative service-time inflation (≥ 1).
    pub multiplier: f64,
    /// Additive tail-latency term in ms (≥ 0).
    pub additive_ms: f64,
}

impl Disturbance {
    /// No disturbance.
    pub fn none() -> Self {
        Self {
            multiplier: 1.0,
            additive_ms: 0.0,
        }
    }
}

/// Stateful interference process; one per co-location run.
#[derive(Debug, Clone)]
pub struct InterferenceModel {
    params: InterferenceParams,
    rng: StdRng,
    active_spike: Option<f64>,
}

impl InterferenceModel {
    /// Creates the process with a deterministic seed.
    pub fn new(params: InterferenceParams, seed: u64) -> Self {
        Self {
            params,
            rng: StdRng::seed_from_u64(seed),
            active_spike: None,
        }
    }

    /// Parameters in force.
    pub fn params(&self) -> &InterferenceParams {
        &self.params
    }

    /// Deterministic component: LS service-time multiplier ≥ 1 induced by
    /// the BE co-runner's memory traffic, shielded by the LS cache share.
    ///
    /// `be_traffic` comes from [`crate::be::BeAppModel::memory_traffic`];
    /// `ls_ways_fraction` is the LS share of LLC ways in `[0, 1]`;
    /// `ls_bw_sensitivity` is the per-service constant.
    pub fn bandwidth_multiplier(
        &self,
        be_traffic: f64,
        ls_ways_fraction: f64,
        ls_bw_sensitivity: f64,
    ) -> f64 {
        // A bigger LS cache share shields it: at a full-cache share the
        // exposure drops to 30% of the unshielded value.
        let shield = 1.0 - 0.7 * ls_ways_fraction.clamp(0.0, 1.0);
        1.0 + self.params.bw_coupling * be_traffic.max(0.0) * shield * ls_bw_sensitivity
    }

    /// Advances the OS-jitter process one interval and returns its
    /// multiplicative latency factor (1.0 when quiet).
    pub fn step_jitter(&mut self) -> f64 {
        match self.active_spike {
            Some(mag) => {
                if self
                    .rng
                    .gen_bool(self.params.spike_end_probability.clamp(0.0, 1.0))
                {
                    self.active_spike = None;
                }
                mag
            }
            None => {
                if self.params.spike_probability > 0.0
                    && self
                        .rng
                        .gen_bool(self.params.spike_probability.clamp(0.0, 1.0))
                {
                    let (lo, hi) = self.params.spike_magnitude;
                    let mag = if hi > lo {
                        self.rng.gen_range(lo..hi)
                    } else {
                        lo
                    };
                    self.active_spike = Some(mag);
                    mag
                } else {
                    1.0
                }
            }
        }
    }

    /// Deterministic additive tail-latency term (ms) from memory-system
    /// queueing induced by the BE co-runner.
    pub fn additive_ms(
        &self,
        be_traffic: f64,
        ls_ways_fraction: f64,
        ls_bw_sensitivity: f64,
    ) -> f64 {
        let shield = 1.0 - 0.7 * ls_ways_fraction.clamp(0.0, 1.0);
        self.params.additive_coupling_ms * be_traffic.max(0.0) * shield * ls_bw_sensitivity
    }

    /// Advances the process one interval and returns the combined
    /// disturbance.
    pub fn step(
        &mut self,
        be_traffic: f64,
        ls_ways_fraction: f64,
        ls_bw_sensitivity: f64,
    ) -> Disturbance {
        Disturbance {
            multiplier: self.bandwidth_multiplier(be_traffic, ls_ways_fraction, ls_bw_sensitivity)
                * self.step_jitter(),
            additive_ms: self.additive_ms(be_traffic, ls_ways_fraction, ls_bw_sensitivity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_params_give_unity() {
        let mut m = InterferenceModel::new(InterferenceParams::none(), 1);
        for _ in 0..100 {
            assert_eq!(m.step(0.8, 0.3, 0.8), Disturbance::none());
        }
    }

    #[test]
    fn additive_term_scales_with_traffic_and_shield() {
        let m = InterferenceModel::new(InterferenceParams::default(), 1);
        assert!(m.additive_ms(0.8, 0.3, 0.8) > m.additive_ms(0.2, 0.3, 0.8));
        assert!(m.additive_ms(0.8, 0.9, 0.8) < m.additive_ms(0.8, 0.1, 0.8));
        assert_eq!(m.additive_ms(0.0, 0.3, 0.8), 0.0);
    }

    #[test]
    fn bandwidth_multiplier_grows_with_traffic() {
        let m = InterferenceModel::new(InterferenceParams::default(), 1);
        let low = m.bandwidth_multiplier(0.1, 0.3, 0.6);
        let high = m.bandwidth_multiplier(0.9, 0.3, 0.6);
        assert!(high > low);
        assert!(low >= 1.0);
    }

    #[test]
    fn more_ls_ways_shield_interference() {
        let m = InterferenceModel::new(InterferenceParams::default(), 1);
        let unshielded = m.bandwidth_multiplier(0.8, 0.1, 0.8);
        let shielded = m.bandwidth_multiplier(0.8, 0.9, 0.8);
        assert!(shielded < unshielded);
    }

    #[test]
    fn jitter_spikes_occur_and_end() {
        let params = InterferenceParams {
            spike_probability: 0.5,
            spike_end_probability: 0.5,
            ..InterferenceParams::default()
        };
        let mut m = InterferenceModel::new(params, 42);
        let mut spiked = 0;
        let mut quiet = 0;
        for _ in 0..500 {
            if m.step_jitter() > 1.0 {
                spiked += 1;
            } else {
                quiet += 1;
            }
        }
        assert!(spiked > 50, "expected spikes, got {spiked}");
        assert!(quiet > 50, "expected quiet intervals, got {quiet}");
    }

    #[test]
    fn jitter_magnitude_in_range() {
        let params = InterferenceParams {
            spike_probability: 1.0,
            spike_end_probability: 1.0,
            spike_magnitude: (1.2, 1.5),
            ..InterferenceParams::default()
        };
        let mut m = InterferenceModel::new(params, 7);
        for _ in 0..100 {
            let j = m.step_jitter();
            assert!((1.2..=1.5).contains(&j) || j == 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = InterferenceModel::new(InterferenceParams::default(), 99);
        let mut b = InterferenceModel::new(InterferenceParams::default(), 99);
        for _ in 0..200 {
            assert_eq!(a.step_jitter(), b.step_jitter());
        }
    }
}
