//! The co-location environment: one LS service and one BE application
//! sharing a simulated power-constrained node.
//!
//! [`CoLocationEnv::step`] plays the role of "one second of reality":
//! given the current resource configuration and offered load it returns
//! the observations a real deployment would collect (tail latency, RAPL
//! power, BE progress). Controllers must treat it as a black box — the
//! predictor trains on *profiled samples* of it, never on its equations.

use crate::be::BeAppModel;
use crate::interference::{InterferenceModel, InterferenceParams};
use crate::ls::LsServiceModel;
use sturgeon_simnode::power::{PartitionLoad, PowerModel};
use sturgeon_simnode::{NodeSpec, PairConfig};

/// One interval's observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Interval end time (s).
    pub t_s: f64,
    /// Offered LS load (queries/s).
    pub qps: f64,
    /// Measured p95 latency (ms), including interference.
    pub p95_ms: f64,
    /// Fraction of the interval's queries within the QoS target.
    pub in_target_fraction: f64,
    /// LS core utilization (≥ 1 means saturated).
    pub ls_utilization: f64,
    /// Package power (W).
    pub power_w: f64,
    /// BE throughput normalized to its whole-node solo run.
    pub be_throughput_norm: f64,
    /// BE IPC proxy (per-core per-cycle efficiency).
    pub be_ipc: f64,
    /// Interference multiplier that was applied this interval.
    pub interference: f64,
}

/// The parts of one [`CoLocationEnv::step`] that depend only on
/// `(config, qps)` and the workload models — not on the node's private
/// interference state. A homogeneous shard whose nodes share one
/// configuration and load computes these once per interval and replays
/// them into every node via [`CoLocationEnv::step_with`]; the result is
/// bit-identical to calling [`CoLocationEnv::step`] on each node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepInvariants {
    /// BE memory traffic feeding the interference model.
    pub be_traffic: f64,
    /// LS share of LLC ways in `[0, 1]`.
    pub ls_ways_fraction: f64,
    /// Ground-truth package power (W) — interference-free by definition.
    pub power_w: f64,
    /// BE throughput normalized to its whole-node solo run.
    pub be_throughput_norm: f64,
    /// BE IPC proxy.
    pub be_ipc: f64,
}

/// A co-location of one LS service and one BE app on one node.
#[derive(Debug, Clone)]
pub struct CoLocationEnv {
    spec: NodeSpec,
    power: PowerModel,
    ls: LsServiceModel,
    be: BeAppModel,
    interference: InterferenceModel,
    budget_w: f64,
    t_s: f64,
}

impl CoLocationEnv {
    /// Builds the environment. The power budget follows the paper's §III-B
    /// rule: "the power budget for a server is set to be the power
    /// consumption when the server runs the LS service at the peak load"
    /// (solo, whole node, maximum frequency).
    pub fn new(
        spec: NodeSpec,
        power: PowerModel,
        ls: LsServiceModel,
        be: BeAppModel,
        interference: InterferenceParams,
        seed: u64,
    ) -> Self {
        let budget_w = Self::ls_solo_peak_power(&spec, &power, &ls);
        Self {
            spec,
            power,
            ls,
            be,
            interference: InterferenceModel::new(interference, seed),
            budget_w,
            t_s: 0.0,
        }
    }

    /// Power of the LS service running alone on the whole node at peak
    /// load and maximum frequency — the budget definition.
    fn ls_solo_peak_power(spec: &NodeSpec, power: &PowerModel, ls: &LsServiceModel) -> f64 {
        let f = spec.max_freq_ghz();
        let lat = ls.latency(
            spec.total_cores,
            f,
            spec.total_llc_ways,
            ls.params.peak_qps,
            1.0,
        );
        let load = PartitionLoad {
            cores: spec.total_cores,
            freq_ghz: f,
            activity: ls.params.activity,
            utilization: ls.power_utilization(lat.utilization),
        };
        power.node_power_w(&[load])
    }

    /// The node's power budget in watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// The node spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// The LS service model (read-only: controllers should *not* use its
    /// equations, only its public constants like the QoS target).
    pub fn ls(&self) -> &LsServiceModel {
        &self.ls
    }

    /// The BE application model.
    pub fn be(&self) -> &BeAppModel {
        &self.be
    }

    /// The ground-truth power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Elapsed simulated time (s).
    pub fn now_s(&self) -> f64 {
        self.t_s
    }

    /// LS partition power (W) at a configuration and load, interference-free.
    pub fn ls_partition_power(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> f64 {
        let lat = self.ls.latency(cores, freq_ghz, ways, qps, 1.0);
        self.power.partition_power_w(&PartitionLoad {
            cores,
            freq_ghz,
            activity: self.ls.params.activity,
            utilization: self.ls.power_utilization(lat.utilization),
        })
    }

    /// BE partition power (W) at a configuration (BE apps pin their cores).
    pub fn be_partition_power(&self, cores: u32, freq_ghz: f64) -> f64 {
        self.power.partition_power_w(&PartitionLoad {
            cores,
            freq_ghz,
            activity: self.be.params.activity,
            utilization: 1.0,
        })
    }

    /// Static/uncore watts (needed to assemble total power from the two
    /// partition models).
    pub fn static_power_w(&self) -> f64 {
        self.power.static_w
    }

    /// Ground-truth total power at a configuration and load (W).
    pub fn total_power(&self, config: &PairConfig, qps: f64) -> f64 {
        self.static_power_w()
            + self.ls_partition_power(
                config.ls.cores,
                config.ls.freq_ghz(&self.spec),
                config.ls.llc_ways,
                qps,
            )
            + self.be_partition_power(config.be.cores, config.be.freq_ghz(&self.spec))
    }

    /// Simulates one monitoring interval (1 s) under `config` at `qps`.
    pub fn step(&mut self, config: &PairConfig, qps: f64) -> Observation {
        let invariants = self.step_invariants(config, qps);
        self.step_with(config, qps, &invariants)
    }

    /// Evaluates the interference-free parts of one interval — a pure
    /// function of `(config, qps)` shareable across every node of a
    /// homogeneous shard running the same configuration and load.
    pub fn step_invariants(&self, config: &PairConfig, qps: f64) -> StepInvariants {
        let be_f = config.be.freq_ghz(&self.spec);
        StepInvariants {
            be_traffic: self
                .be
                .memory_traffic(config.be.cores, be_f, config.be.llc_ways),
            ls_ways_fraction: config.ls.llc_ways as f64 / self.spec.total_llc_ways as f64,
            power_w: self.total_power(config, qps),
            be_throughput_norm: self.be.normalized_throughput(
                config.be.cores,
                be_f,
                config.be.llc_ways,
            ),
            be_ipc: self.be.ipc(config.be.cores, be_f, config.be.llc_ways),
        }
    }

    /// Simulates one interval replaying precomputed
    /// [`StepInvariants`] and advancing only this node's private
    /// interference process. `step(config, qps)` is exactly
    /// `step_with(config, qps, &step_invariants(config, qps))`.
    pub fn step_with(
        &mut self,
        config: &PairConfig,
        qps: f64,
        invariants: &StepInvariants,
    ) -> Observation {
        debug_assert!(config.validate(&self.spec).is_ok(), "invalid config");
        debug_assert_eq!(*invariants, self.step_invariants(config, qps));
        self.t_s += 1.0;
        let ls_f = config.ls.freq_ghz(&self.spec);

        // Interference from the BE co-runner plus OS jitter.
        let disturbance = self.interference.step(
            invariants.be_traffic,
            invariants.ls_ways_fraction,
            self.ls.params.bw_sensitivity,
        );

        let lat = self.ls.latency_disturbed(
            config.ls.cores,
            ls_f,
            config.ls.llc_ways,
            qps,
            disturbance.multiplier,
            disturbance.additive_ms,
        );

        Observation {
            t_s: self.t_s,
            qps,
            p95_ms: lat.p95_ms,
            in_target_fraction: lat.in_target_fraction,
            ls_utilization: lat.utilization,
            power_w: invariants.power_w,
            be_throughput_norm: invariants.be_throughput_norm,
            be_ipc: invariants.be_ipc,
            interference: disturbance.multiplier,
        }
    }

    /// Interference-free probe of an operating point — what a dedicated
    /// profiling cluster measures when collecting training samples (§V-A).
    pub fn profile(&self, config: &PairConfig, qps: f64) -> Observation {
        let ls_f = config.ls.freq_ghz(&self.spec);
        let be_f = config.be.freq_ghz(&self.spec);
        let lat = self
            .ls
            .latency(config.ls.cores, ls_f, config.ls.llc_ways, qps, 1.0);
        Observation {
            t_s: self.t_s,
            qps,
            p95_ms: lat.p95_ms,
            in_target_fraction: lat.in_target_fraction,
            ls_utilization: lat.utilization,
            power_w: self.total_power(config, qps),
            be_throughput_norm: self.be.normalized_throughput(
                config.be.cores,
                be_f,
                config.be.llc_ways,
            ),
            be_ipc: self.be.ipc(config.be.cores, be_f, config.be.llc_ways),
            interference: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_simnode::Allocation;

    fn env(ls: LsServiceId, be: BeAppId, seed: u64) -> CoLocationEnv {
        CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(ls),
            be_app(be),
            InterferenceParams::default(),
            seed,
        )
    }

    fn quiet_env(ls: LsServiceId, be: BeAppId) -> CoLocationEnv {
        CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(ls),
            be_app(be),
            InterferenceParams::none(),
            0,
        )
    }

    fn cfg(c1: u32, f1: usize, l1: u32, c2: u32, f2: usize, l2: u32) -> PairConfig {
        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2))
    }

    #[test]
    fn budget_is_positive_and_plausible() {
        for ls in LsServiceId::all() {
            let e = quiet_env(ls, BeAppId::Raytrace);
            let b = e.budget_w();
            assert!((40.0..150.0).contains(&b), "{}: budget {b} W", ls.name());
        }
    }

    #[test]
    fn fig2_overload_band_holds() {
        // Fig. 2: allocate "just enough" to the LS at 20% load, hand the
        // rest to the BE at max frequency → power exceeds the budget by
        // roughly 2–13% for every one of the 18 pairs.
        for (ls_id, be_id) in crate::catalog::all_pairs() {
            let e = quiet_env(ls_id, be_id);
            let ls = e.ls().clone();
            let qps = 0.2 * ls.params.peak_qps;
            // "Just enough": smallest cores at a mid frequency with
            // just-enough ways, mirroring §III-B.
            let ways = 6u32;
            let freq_level = 5usize; // ~1.75 GHz
            let f_ghz = e.spec().freq_ghz(freq_level);
            let min_cores = (1..=19)
                .find(|&c| ls.meets_qos(c, f_ghz, ways, qps))
                .expect("feasible core count");
            let config = cfg(min_cores, freq_level, ways, 20 - min_cores, 9, 20 - ways);
            let power = e.total_power(&config, qps);
            let over = power / e.budget_w() - 1.0;
            assert!(
                (0.015..0.14).contains(&over),
                "{}+{}: overload {:.1}% outside the paper's Fig. 2 band",
                ls_id.name(),
                be_id.name(),
                over * 100.0
            );
        }
    }

    #[test]
    fn step_advances_time_and_observes() {
        let mut e = env(LsServiceId::Memcached, BeAppId::Blackscholes, 3);
        let c = cfg(6, 9, 8, 14, 5, 12);
        let o1 = e.step(&c, 12_000.0);
        let o2 = e.step(&c, 12_000.0);
        assert_eq!(o1.t_s, 1.0);
        assert_eq!(o2.t_s, 2.0);
        assert!(o1.p95_ms > 0.0);
        assert!(o1.power_w > 0.0);
        assert!(o1.be_throughput_norm > 0.0);
    }

    #[test]
    fn profile_is_deterministic_and_quiet() {
        let e = env(LsServiceId::Xapian, BeAppId::Ferret, 5);
        let c = cfg(6, 7, 8, 14, 4, 12);
        let a = e.profile(&c, 1_000.0);
        let b = e.profile(&c, 1_000.0);
        assert_eq!(a, b);
        assert_eq!(a.interference, 1.0);
    }

    #[test]
    fn interference_hurts_latency_on_average() {
        let c = cfg(5, 7, 6, 15, 9, 14);
        let qps = 0.3 * 60_000.0;
        let quiet = quiet_env(LsServiceId::Memcached, BeAppId::Fluidanimate)
            .profile(&c, qps)
            .p95_ms;
        let mut noisy = env(LsServiceId::Memcached, BeAppId::Fluidanimate, 11);
        let avg: f64 = (0..50).map(|_| noisy.step(&c, qps).p95_ms).sum::<f64>() / 50.0;
        assert!(avg > quiet, "noisy {avg} vs quiet {quiet}");
    }

    #[test]
    fn total_power_decomposes() {
        let e = quiet_env(LsServiceId::ImgDnn, BeAppId::Swaptions);
        let c = cfg(4, 6, 5, 16, 8, 15);
        let qps = 600.0;
        let total = e.total_power(&c, qps);
        let sum = e.static_power_w()
            + e.ls_partition_power(4, e.spec().freq_ghz(6), 5, qps)
            + e.be_partition_power(16, e.spec().freq_ghz(8));
        assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn be_only_power_grows_with_frequency() {
        let e = quiet_env(LsServiceId::Memcached, BeAppId::Blackscholes);
        assert!(e.be_partition_power(12, 2.2) > e.be_partition_power(12, 1.2));
    }
}
