//! The paper's workload catalog: three LS services (CloudSuite/Tailbench)
//! and six PARSEC BE applications, with calibrated model constants.
//!
//! Calibration targets (checked by tests here and in the bench crate):
//!
//! * peak loads 60 000 / 3 500 / 3 000 QPS and QoS targets 10 / 15 / 10 ms
//!   exactly as in §III-A / §VII-A;
//! * "just enough" low-load allocations close to the paper's measurements
//!   (§III-B: ≈4 cores at mid frequency and 5–6 ways at 20% load);
//! * co-locating any BE app on the leftover resources at maximum frequency
//!   overshoots the budget by single-digit to low-double-digit percent
//!   (Fig. 2: 2.04%–12.57%);
//! * scalability/frequency-sensitivity heterogeneity across BE apps so
//!   both core-preferring and frequency-preferring co-locations exist
//!   (Fig. 3), with ferret the strongest core-preferrer.

use crate::be::{BeAppModel, BeAppParams};
use crate::ls::{LsServiceModel, LsServiceParams};

/// Node ceilings the catalog models are normalized against (Table II).
pub const MAX_FREQ_GHZ: f64 = 2.2;
/// Total logical cores on the node.
pub const TOTAL_CORES: u32 = 20;
/// Total LLC ways on the node.
pub const TOTAL_WAYS: u32 = 20;

/// Identifier for the three LS services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LsServiceId {
    /// In-memory key-value cache (CloudSuite), peak 60 000 QPS, 10 ms QoS.
    Memcached,
    /// Web search leaf node (Tailbench), peak 3 500 QPS, 15 ms QoS.
    Xapian,
    /// Handwriting recognition (Tailbench), peak 3 000 QPS, 10 ms QoS.
    ImgDnn,
}

impl LsServiceId {
    /// All three services in paper order.
    pub fn all() -> [LsServiceId; 3] {
        [
            LsServiceId::Memcached,
            LsServiceId::Xapian,
            LsServiceId::ImgDnn,
        ]
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            LsServiceId::Memcached => "memcached",
            LsServiceId::Xapian => "xapian",
            LsServiceId::ImgDnn => "img-dnn",
        }
    }
}

/// Identifier for the six PARSEC BE applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BeAppId {
    /// Option pricing; embarrassingly parallel, compute-bound.
    Blackscholes,
    /// Physics simulation of a human face; moderate scaling.
    Facesim,
    /// Content-based similarity search pipeline; scales very well.
    Ferret,
    /// Real-time raytracing; good scaling, moderate cache appetite.
    Raytrace,
    /// Monte-Carlo swaption pricing; compute-bound, tiny working set.
    Swaptions,
    /// SPH fluid simulation; sync-bound, memory-bandwidth hungry.
    Fluidanimate,
}

impl BeAppId {
    /// All six apps in paper order (bs, fa, fe, rt, sp, fd).
    pub fn all() -> [BeAppId; 6] {
        [
            BeAppId::Blackscholes,
            BeAppId::Facesim,
            BeAppId::Ferret,
            BeAppId::Raytrace,
            BeAppId::Swaptions,
            BeAppId::Fluidanimate,
        ]
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            BeAppId::Blackscholes => "blackscholes",
            BeAppId::Facesim => "facesim",
            BeAppId::Ferret => "ferret",
            BeAppId::Raytrace => "raytrace",
            BeAppId::Swaptions => "swaptions",
            BeAppId::Fluidanimate => "fluidanimate",
        }
    }

    /// Two-letter abbreviation used in the paper's figures.
    pub fn abbrev(&self) -> &'static str {
        match self {
            BeAppId::Blackscholes => "bs",
            BeAppId::Facesim => "fa",
            BeAppId::Ferret => "fe",
            BeAppId::Raytrace => "rt",
            BeAppId::Swaptions => "sp",
            BeAppId::Fluidanimate => "fd",
        }
    }
}

/// Builds the LS service model for one id.
pub fn ls_service(id: LsServiceId) -> LsServiceModel {
    let params = match id {
        LsServiceId::Memcached => LsServiceParams {
            name: "memcached",
            peak_qps: 60_000.0,
            qos_target_ms: 10.0,
            base_service_ms: 0.22,
            freq_exponent: 1.0,
            cache_sat_ways: 8,
            cache_penalty: 0.5,
            tail_mult: 1.6,
            activity: 0.75,
            bw_sensitivity: 0.9,
        },
        LsServiceId::Xapian => LsServiceParams {
            name: "xapian",
            peak_qps: 3_500.0,
            qos_target_ms: 15.0,
            base_service_ms: 2.4,
            freq_exponent: 1.0,
            cache_sat_ways: 10,
            cache_penalty: 0.6,
            tail_mult: 1.6,
            activity: 0.90,
            bw_sensitivity: 0.9,
        },
        LsServiceId::ImgDnn => LsServiceParams {
            name: "img-dnn",
            peak_qps: 3_000.0,
            qos_target_ms: 10.0,
            base_service_ms: 2.6,
            freq_exponent: 1.0,
            cache_sat_ways: 6,
            cache_penalty: 0.4,
            tail_mult: 1.6,
            activity: 0.95,
            bw_sensitivity: 0.5,
        },
    };
    LsServiceModel::new(params, MAX_FREQ_GHZ)
}

/// Builds the BE application model for one id.
pub fn be_app(id: BeAppId) -> BeAppModel {
    let params = match id {
        BeAppId::Blackscholes => BeAppParams {
            name: "blackscholes",
            parallel_fraction: 0.98,
            freq_exponent: 1.0,
            cache_sat_ways: 4,
            cache_penalty: 0.10,
            activity: 0.77,
            traffic_factor: 0.20,
            input_level: 5,
        },
        BeAppId::Facesim => BeAppParams {
            name: "facesim",
            parallel_fraction: 0.92,
            freq_exponent: 0.85,
            cache_sat_ways: 12,
            cache_penalty: 0.35,
            activity: 0.70,
            traffic_factor: 0.60,
            input_level: 5,
        },
        BeAppId::Ferret => BeAppParams {
            name: "ferret",
            parallel_fraction: 0.995,
            freq_exponent: 0.70,
            cache_sat_ways: 10,
            cache_penalty: 0.30,
            activity: 0.72,
            traffic_factor: 0.50,
            input_level: 5,
        },
        BeAppId::Raytrace => BeAppParams {
            name: "raytrace",
            parallel_fraction: 0.95,
            freq_exponent: 0.95,
            cache_sat_ways: 8,
            cache_penalty: 0.25,
            activity: 0.68,
            traffic_factor: 0.40,
            input_level: 5,
        },
        BeAppId::Swaptions => BeAppParams {
            name: "swaptions",
            parallel_fraction: 0.97,
            freq_exponent: 1.0,
            cache_sat_ways: 3,
            cache_penalty: 0.05,
            activity: 0.755,
            traffic_factor: 0.15,
            input_level: 5,
        },
        BeAppId::Fluidanimate => BeAppParams {
            name: "fluidanimate",
            parallel_fraction: 0.90,
            freq_exponent: 0.75,
            cache_sat_ways: 14,
            cache_penalty: 0.40,
            activity: 0.74,
            traffic_factor: 0.80,
            input_level: 5,
        },
    };
    BeAppModel::new(params, MAX_FREQ_GHZ, TOTAL_CORES, TOTAL_WAYS)
}

/// Identifier for additional PARSEC applications beyond the paper's six —
/// an extended catalog for downstream users (characteristics from the
/// PARSEC characterization literature; not used by any paper
/// reproduction figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtendedBeAppId {
    /// H.264 video encoding; pipeline-parallel, frequency-hungry.
    X264,
    /// Simulated-annealing chip routing; cache-resident, poor scaling.
    Canneal,
    /// Data deduplication pipeline; bandwidth-heavy, scales well.
    Dedup,
    /// Streaming k-means clustering; memory-bandwidth bound.
    Streamcluster,
}

impl ExtendedBeAppId {
    /// All extended apps.
    pub fn all() -> [ExtendedBeAppId; 4] {
        [
            ExtendedBeAppId::X264,
            ExtendedBeAppId::Canneal,
            ExtendedBeAppId::Dedup,
            ExtendedBeAppId::Streamcluster,
        ]
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ExtendedBeAppId::X264 => "x264",
            ExtendedBeAppId::Canneal => "canneal",
            ExtendedBeAppId::Dedup => "dedup",
            ExtendedBeAppId::Streamcluster => "streamcluster",
        }
    }
}

/// Builds a model for an extended-catalog application.
pub fn extended_be_app(id: ExtendedBeAppId) -> BeAppModel {
    let params = match id {
        ExtendedBeAppId::X264 => BeAppParams {
            name: "x264",
            parallel_fraction: 0.96,
            freq_exponent: 1.0,
            cache_sat_ways: 6,
            cache_penalty: 0.15,
            activity: 0.82,
            traffic_factor: 0.35,
            input_level: 5,
        },
        ExtendedBeAppId::Canneal => BeAppParams {
            name: "canneal",
            parallel_fraction: 0.85,
            freq_exponent: 0.6,
            cache_sat_ways: 16,
            cache_penalty: 0.55,
            activity: 0.6,
            traffic_factor: 0.9,
            input_level: 5,
        },
        ExtendedBeAppId::Dedup => BeAppParams {
            name: "dedup",
            parallel_fraction: 0.97,
            freq_exponent: 0.8,
            cache_sat_ways: 10,
            cache_penalty: 0.3,
            activity: 0.7,
            traffic_factor: 0.7,
            input_level: 5,
        },
        ExtendedBeAppId::Streamcluster => BeAppParams {
            name: "streamcluster",
            parallel_fraction: 0.93,
            freq_exponent: 0.65,
            cache_sat_ways: 12,
            cache_penalty: 0.35,
            activity: 0.75,
            traffic_factor: 0.85,
            input_level: 5,
        },
    };
    BeAppModel::new(params, MAX_FREQ_GHZ, TOTAL_CORES, TOTAL_WAYS)
}

/// All three LS services in paper order.
pub fn ls_services() -> Vec<LsServiceModel> {
    LsServiceId::all().into_iter().map(ls_service).collect()
}

/// All six BE apps in paper order.
pub fn be_apps() -> Vec<BeAppModel> {
    BeAppId::all().into_iter().map(be_app).collect()
}

/// The 18 co-location pairs of the evaluation (3 LS × 6 BE).
pub fn all_pairs() -> Vec<(LsServiceId, BeAppId)> {
    let mut pairs = Vec::with_capacity(18);
    for ls in LsServiceId::all() {
        for be in BeAppId::all() {
            pairs.push((ls, be));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peak_loads_and_targets() {
        let mc = ls_service(LsServiceId::Memcached);
        assert_eq!(mc.params.peak_qps, 60_000.0);
        assert_eq!(mc.params.qos_target_ms, 10.0);
        let xa = ls_service(LsServiceId::Xapian);
        assert_eq!(xa.params.peak_qps, 3_500.0);
        assert_eq!(xa.params.qos_target_ms, 15.0);
        let im = ls_service(LsServiceId::ImgDnn);
        assert_eq!(im.params.peak_qps, 3_000.0);
        assert_eq!(im.params.qos_target_ms, 10.0);
    }

    #[test]
    fn eighteen_pairs() {
        assert_eq!(all_pairs().len(), 18);
    }

    #[test]
    fn names_and_abbrevs_unique() {
        let apps = BeAppId::all();
        for (i, a) in apps.iter().enumerate() {
            for b in &apps[i + 1..] {
                assert_ne!(a.name(), b.name());
                assert_ne!(a.abbrev(), b.abbrev());
            }
        }
    }

    #[test]
    fn parallel_fractions_valid() {
        for m in be_apps() {
            assert!((0.0..1.0).contains(&m.params.parallel_fraction));
        }
    }

    #[test]
    fn frequency_exponents_physical() {
        for m in be_apps() {
            assert!(m.params.freq_exponent > 0.0 && m.params.freq_exponent <= 1.0);
        }
    }

    #[test]
    fn extended_catalog_models_are_well_formed() {
        for id in ExtendedBeAppId::all() {
            let m = extended_be_app(id);
            assert!((0.0..1.0).contains(&m.params.parallel_fraction));
            assert!(m.params.freq_exponent > 0.0 && m.params.freq_exponent <= 1.0);
            assert!((m.normalized_throughput(20, 2.2, 20) - 1.0).abs() < 1e-12);
            assert!(m.cache_factor(1) > 0.0);
        }
        // Distinct names, also distinct from the paper's six.
        let mut names: Vec<&str> = ExtendedBeAppId::all().iter().map(|i| i.name()).collect();
        names.extend(BeAppId::all().iter().map(|i| i.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn extended_apps_span_the_preference_spectrum() {
        // x264 is the most frequency-sensitive; canneal the least.
        let x264 = extended_be_app(ExtendedBeAppId::X264);
        let canneal = extended_be_app(ExtendedBeAppId::Canneal);
        let gain = |m: &crate::be::BeAppModel| m.rate(8, 2.2, 12) / m.rate(8, 1.4, 12);
        assert!(gain(&x264) > gain(&canneal));
        // Canneal is the most cache-hungry.
        assert!(canneal.cache_factor(2) < x264.cache_factor(2));
    }

    #[test]
    fn low_load_allocations_close_to_paper() {
        // §III-B quotes: at 20% load, ~4 cores at 1.6–1.8 GHz and 5–6 ways
        // suffice. We assert the minimal core count at those settings is
        // in the right neighbourhood (3–6 cores).
        let cases = [
            (LsServiceId::Memcached, 1.7, 6u32),
            (LsServiceId::Xapian, 1.8, 5u32),
            (LsServiceId::ImgDnn, 1.8, 5u32),
        ];
        for (id, freq, ways) in cases {
            let m = ls_service(id);
            let qps = 0.2 * m.params.peak_qps;
            let min_cores = (1..=20)
                .find(|&c| m.meets_qos(c, freq, ways, qps))
                .expect("some core count must work");
            assert!(
                (3..=6).contains(&min_cores),
                "{}: minimal cores at {freq} GHz / {ways} ways = {min_cores}",
                id.name()
            );
        }
    }
}
