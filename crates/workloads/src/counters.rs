//! Simulated per-partition hardware performance counters.
//!
//! The paper's profiling pipeline reads IPC and power through "application
//! instrumentation in a dedicated cluster" and telemetry systems (§V-A,
//! citing WSMeter). Real nodes expose that telemetry as hardware counters:
//! instructions, cycles, LLC references/misses, memory-bandwidth bytes.
//! This module derives all of them consistently from the ground-truth
//! application models, so tooling written against counter deltas (IPC
//! dashboards, bandwidth alarms, miss-ratio curves) can run against the
//! simulator unchanged.

use crate::be::BeAppModel;
use crate::ls::LsServiceModel;
use serde::Serialize;
use sturgeon_simnode::{Allocation, NodeSpec};

/// One partition's counter deltas over a 1-second interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CounterSample {
    /// Retired instructions.
    pub instructions: u64,
    /// Core cycles across the partition.
    pub cycles: u64,
    /// LLC references.
    pub llc_references: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Memory-controller traffic in bytes.
    pub memory_bytes: u64,
}

impl CounterSample {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// LLC miss ratio in `[0, 1]`.
    pub fn llc_miss_ratio(&self) -> f64 {
        if self.llc_references == 0 {
            return 0.0;
        }
        self.llc_misses as f64 / self.llc_references as f64
    }

    /// Memory bandwidth in GB/s (over the 1 s interval).
    pub fn memory_bandwidth_gbs(&self) -> f64 {
        self.memory_bytes as f64 / 1e9
    }
}

/// Cache line size used to convert misses into bytes.
const LINE_BYTES: u64 = 64;
/// LLC references per instruction (order-of-magnitude constant; the
/// *ratios* between partitions are what carry information).
const LLC_REFS_PER_KILO_INSTR: f64 = 30.0;

/// Derives BE-partition counters from the application model.
pub fn be_counters(spec: &NodeSpec, model: &BeAppModel, alloc: &Allocation) -> CounterSample {
    let f_hz = alloc.freq_ghz(spec) * 1e9;
    // BE partitions pin their cores: cycles = cores × f × 1 s.
    let cycles = (alloc.cores as f64 * f_hz) as u64;
    let ipc = model.ipc(alloc.cores, alloc.freq_ghz(spec), alloc.llc_ways);
    let instructions = (cycles as f64 * ipc) as u64;
    let refs = instructions as f64 * LLC_REFS_PER_KILO_INSTR / 1000.0;
    // Lost cache factor turns into misses: at full cache the miss ratio
    // bottoms out at 5%, at one way it approaches the app's penalty.
    let miss_ratio = (0.05 + (1.0 - model.cache_factor(alloc.llc_ways))).clamp(0.0, 0.95);
    let misses = refs * miss_ratio;
    CounterSample {
        instructions,
        cycles,
        llc_references: refs as u64,
        llc_misses: misses as u64,
        memory_bytes: (misses as u64) * LINE_BYTES,
    }
}

/// Derives LS-partition counters at an offered load.
pub fn ls_counters(
    spec: &NodeSpec,
    model: &LsServiceModel,
    alloc: &Allocation,
    qps: f64,
) -> CounterSample {
    let f_ghz = alloc.freq_ghz(spec);
    let f_hz = f_ghz * 1e9;
    let lat = model.latency(alloc.cores, f_ghz, alloc.llc_ways, qps, 1.0);
    let busy = lat.utilization.clamp(0.0, 1.0);
    let cycles = (alloc.cores as f64 * f_hz * busy) as u64;
    // Services retire ~1 instruction per busy cycle at full cache; cache
    // squeeze stalls the pipeline (service-time inflation ⇒ lower IPC).
    let ipc = 1.0 / model.cache_inflation(alloc.llc_ways);
    let instructions = (cycles as f64 * ipc) as u64;
    let refs = instructions as f64 * LLC_REFS_PER_KILO_INSTR / 1000.0;
    let miss_ratio = (0.03 + (model.cache_inflation(alloc.llc_ways) - 1.0)).clamp(0.0, 0.95);
    let misses = refs * miss_ratio;
    CounterSample {
        instructions,
        cycles,
        llc_references: refs as u64,
        llc_misses: misses as u64,
        memory_bytes: (misses as u64) * LINE_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_simnode::NodeSpec;

    fn spec() -> NodeSpec {
        NodeSpec::xeon_e5_2630_v4()
    }

    #[test]
    fn be_cycles_scale_with_cores_and_frequency() {
        let s = spec();
        let m = be_app(BeAppId::Raytrace);
        let small = be_counters(&s, &m, &Allocation::new(4, 0, 10));
        let big = be_counters(&s, &m, &Allocation::new(8, 0, 10));
        assert_eq!(big.cycles, 2 * small.cycles);
        let fast = be_counters(&s, &m, &Allocation::new(4, 9, 10));
        assert!(fast.cycles > small.cycles);
    }

    #[test]
    fn be_ipc_matches_model() {
        let s = spec();
        let m = be_app(BeAppId::Ferret);
        let alloc = Allocation::new(8, 5, 10);
        let c = be_counters(&s, &m, &alloc);
        let expected = m.ipc(8, alloc.freq_ghz(&s), 10);
        assert!(
            (c.ipc() - expected).abs() < 0.01,
            "{} vs {expected}",
            c.ipc()
        );
    }

    #[test]
    fn squeezing_cache_raises_miss_ratio_and_bandwidth() {
        let s = spec();
        let m = be_app(BeAppId::Fluidanimate);
        let roomy = be_counters(&s, &m, &Allocation::new(8, 9, 16));
        let squeezed = be_counters(&s, &m, &Allocation::new(8, 9, 2));
        assert!(squeezed.llc_miss_ratio() > roomy.llc_miss_ratio());
        // Bandwidth per instruction rises even though total work drops.
        let bw_per_instr = |c: &CounterSample| c.memory_bytes as f64 / c.instructions as f64;
        assert!(bw_per_instr(&squeezed) > bw_per_instr(&roomy));
    }

    #[test]
    fn ls_counters_track_utilization() {
        let s = spec();
        let m = ls_service(LsServiceId::Memcached);
        let alloc = Allocation::new(8, 9, 10);
        let idle = ls_counters(&s, &m, &alloc, 2_000.0);
        let busy = ls_counters(&s, &m, &alloc, 30_000.0);
        assert!(busy.cycles > idle.cycles);
        assert!(busy.instructions > idle.instructions);
    }

    #[test]
    fn counters_are_internally_consistent() {
        let s = spec();
        let m = be_app(BeAppId::Blackscholes);
        let c = be_counters(&s, &m, &Allocation::new(10, 7, 8));
        assert!(c.llc_misses <= c.llc_references);
        assert_eq!(c.memory_bytes, c.llc_misses * 64);
        assert!(c.ipc() > 0.0 && c.ipc() < 4.0, "IPC {}", c.ipc());
        assert!((0.0..=1.0).contains(&c.llc_miss_ratio()));
    }

    #[test]
    fn zero_activity_edge_cases() {
        let c = CounterSample {
            instructions: 0,
            cycles: 0,
            llc_references: 0,
            llc_misses: 0,
            memory_bytes: 0,
        };
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.llc_miss_ratio(), 0.0);
        assert_eq!(c.memory_bandwidth_gbs(), 0.0);
    }
}
