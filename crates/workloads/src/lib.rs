//! # sturgeon-workloads
//!
//! Ground-truth application models for the Sturgeon reproduction: the
//! three latency-sensitive services of the paper (*memcached*, *xapian*,
//! *img-dnn*) and the six PARSEC best-effort applications (*blackscholes,
//! facesim, ferret, raytrace, swaptions, fluidanimate*), plus open-loop
//! load generation and the unmanaged-resource interference the balancer
//! exists to reject.
//!
//! These models replace the paper's real workloads (see DESIGN.md for the
//! substitution argument). The essential behaviours are preserved:
//!
//! * LS tail latency follows an Erlang-C (M/M/c) queueing surface over
//!   (cores, frequency, LLC ways, QPS) with a heavy-tailed service-time
//!   correction — the hockey-stick latency cliff that makes "just enough"
//!   allocations meaningful.
//! * BE throughput combines Amdahl scaling in cores, a per-app frequency
//!   sensitivity, and an LLC miss curve — the heterogeneity that creates
//!   the paper's core-preferring vs frequency-preferring split (Fig. 3).
//! * Per-app power activity factors make BE applications out-draw the LS
//!   service they replace, producing the Fig. 2 overload.
//! * A stochastic interference process (memory-bandwidth pressure from the
//!   BE co-runner + random OS jitter) perturbs LS latency beyond what any
//!   predictor can foresee, which is what Algorithm 2 compensates for.
//!
//! The [`env::CoLocationEnv`] ties it all together: one call to
//! [`env::CoLocationEnv::step`] simulates a 1-second monitoring interval
//! under the current resource configuration and returns exactly the
//! observations a real node would expose (p95 latency, power, throughput).

pub mod be;
pub mod catalog;
pub mod counters;
pub mod env;
pub mod interference;
pub mod loadgen;
pub mod ls;
pub mod multienv;
pub mod querysim;
pub mod queueing;

pub use be::{BeAppModel, BeAppParams};
pub use catalog::{be_apps, ls_services, BeAppId, LsServiceId};
pub use counters::{be_counters, ls_counters, CounterSample};
pub use env::{CoLocationEnv, Observation};
pub use interference::{InterferenceModel, InterferenceParams};
pub use loadgen::LoadProfile;
pub use ls::{LsServiceModel, LsServiceParams};
pub use multienv::{LsObservation, MultiColocationEnv, MultiConfig, MultiObservation};
pub use querysim::{MeasuredColocation, MeasuredLatency, QueryLevelSim};
pub use queueing::{erlang_c, MmcQueue};
