//! Latency-sensitive service models (memcached / xapian / img-dnn).
//!
//! Ground truth for an LS service is an M/M/c queue whose per-query
//! service time depends on core frequency and LLC allocation:
//!
//! ```text
//! S(f, w) = S_base · (f_max / f)^γ · cache_inflation(w) · interference
//! ```
//!
//! The p95 response time combines a heavy-tail service component
//! (`tail_mult · S`, approximating a lognormal service distribution) with
//! the analytic M/M/c p95 queueing delay. Near saturation the queueing
//! term explodes — the latency cliff that makes "just enough" resource
//! allocations (paper §V-B) well defined.

use crate::queueing::MmcQueue;
use serde::Serialize;

/// Calibration constants for one LS service.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LsServiceParams {
    /// Service name (e.g. "memcached").
    pub name: &'static str,
    /// Peak load in queries per second (paper: 60 000 / 3 500 / 3 000).
    pub peak_qps: f64,
    /// QoS target on the 95th-percentile latency, in ms (10 / 15 / 10).
    pub qos_target_ms: f64,
    /// Mean per-query service time at max frequency with a full cache (ms).
    pub base_service_ms: f64,
    /// Service-rate sensitivity to frequency: rate ∝ f^γ.
    pub freq_exponent: f64,
    /// LLC ways beyond which the service gains nothing.
    pub cache_sat_ways: u32,
    /// Service-time inflation when squeezed to a single way.
    pub cache_penalty: f64,
    /// p95/mean ratio of the service-time distribution (heavy tail).
    pub tail_mult: f64,
    /// Power activity factor (see `simnode::power`).
    pub activity: f64,
    /// Sensitivity of service time to memory-bandwidth interference.
    pub bw_sensitivity: f64,
}

/// Result of evaluating the latency model at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsLatency {
    /// 95th-percentile response time in ms.
    pub p95_ms: f64,
    /// Fraction of queries completing within the QoS target.
    pub in_target_fraction: f64,
    /// Core utilization in `[0, ∞)`; ≥ 1 means saturated.
    pub utilization: f64,
}

/// An LS service instance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LsServiceModel {
    /// Calibration constants.
    pub params: LsServiceParams,
    /// Maximum node frequency (GHz) used to normalize the DVFS ratio.
    pub max_freq_ghz: f64,
}

impl LsServiceModel {
    /// Creates a model; `max_freq_ghz` is the node's top DVFS step.
    pub fn new(params: LsServiceParams, max_freq_ghz: f64) -> Self {
        Self {
            params,
            max_freq_ghz,
        }
    }

    /// Multiplicative service-time inflation from a limited LLC share.
    /// 1.0 at/after saturation, `1 + cache_penalty` at one way.
    pub fn cache_inflation(&self, ways: u32) -> f64 {
        let sat = self.params.cache_sat_ways.max(2);
        if ways >= sat {
            return 1.0;
        }
        let deficit = (sat - ways.max(1)) as f64 / (sat - 1) as f64;
        1.0 + self.params.cache_penalty * deficit.powf(1.5)
    }

    /// Mean per-query service time (ms) under the allocation and an
    /// interference multiplier (1.0 = no interference).
    pub fn service_time_ms(&self, freq_ghz: f64, ways: u32, interference: f64) -> f64 {
        let f = freq_ghz.max(1e-3);
        self.params.base_service_ms
            * (self.max_freq_ghz / f).powf(self.params.freq_exponent)
            * self.cache_inflation(ways)
            * interference.max(1.0)
    }

    /// Evaluates p95 latency and QoS attainment at an operating point
    /// with no additive disturbance.
    pub fn latency(
        &self,
        cores: u32,
        freq_ghz: f64,
        ways: u32,
        qps: f64,
        interference: f64,
    ) -> LsLatency {
        self.latency_disturbed(cores, freq_ghz, ways, qps, interference, 0.0)
    }

    /// Evaluates p95 latency and QoS attainment at an operating point.
    /// `interference` multiplies every service time; `additive_ms` is a
    /// flat tail-latency addition (memory-controller queueing, OS delays)
    /// that shifts the response-time distribution without stretching it.
    pub fn latency_disturbed(
        &self,
        cores: u32,
        freq_ghz: f64,
        ways: u32,
        qps: f64,
        interference: f64,
        additive_ms: f64,
    ) -> LsLatency {
        let additive_ms = additive_ms.max(0.0);
        let s_ms = self.service_time_ms(freq_ghz, ways, interference);
        let mu = 1000.0 / s_ms; // per-core service rate, queries/s
        let queue = MmcQueue {
            servers: cores.max(1),
            arrival_rate: qps.max(0.0),
            service_rate: mu,
        };
        let rho = queue.utilization();
        let target = self.params.qos_target_ms;
        if queue.is_saturated() {
            // The backlog grows within the interval: latency is far beyond
            // target. Roughly `cμ/λ` of the queries are served at all, and
            // of those the earlier arrivals still meet the target; deeper
            // saturation is strictly worse on both metrics.
            let p95_ms = target * (2.0 + 8.0 * (rho - 1.0)) + additive_ms;
            let in_target = (0.8 / rho).clamp(0.0, 0.85);
            return LsLatency {
                p95_ms,
                in_target_fraction: in_target,
                utilization: rho,
            };
        }
        let service_p95_ms = self.params.tail_mult * s_ms + additive_ms;
        let wait_p95_ms = queue.wait_quantile_s(0.95) * 1000.0;
        let p95_ms = service_p95_ms + wait_p95_ms;
        // Fraction within target: queries make the deadline when their
        // queueing delay fits in whatever headroom the (shifted) service
        // tail leaves.
        let headroom_s = ((target - service_p95_ms) / 1000.0).max(0.0);
        let in_target = if target <= service_p95_ms {
            // Even unqueued queries blow the target through their own
            // service tail; approximate with the service-tail mass only.
            0.90 * (target / service_p95_ms).min(1.0)
        } else {
            queue.wait_below_fraction(headroom_s)
        };
        LsLatency {
            p95_ms,
            in_target_fraction: in_target,
            utilization: rho,
        }
    }

    /// Core utilization used by the power model: an affine floor models
    /// the polling/timer work real services burn even when mostly idle.
    pub fn power_utilization(&self, rho: f64) -> f64 {
        0.35 + 0.65 * rho.clamp(0.0, 1.0)
    }

    /// True when the model predicts the QoS target is met at this point
    /// (no interference) — the ground-truth feasibility oracle used by
    /// profiling and the exhaustive-search baseline.
    pub fn meets_qos(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> bool {
        self.latency(cores, freq_ghz, ways, qps, 1.0).p95_ms <= self.params.qos_target_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ls_services, LsServiceId};

    fn memcached() -> LsServiceModel {
        ls_services()
            .into_iter()
            .find(|m| m.params.name == LsServiceId::Memcached.name())
            .unwrap()
    }

    #[test]
    fn latency_rises_with_load() {
        let m = memcached();
        let low = m.latency(8, 2.2, 10, 10_000.0, 1.0);
        let high = m.latency(8, 2.2, 10, 30_000.0, 1.0);
        assert!(high.p95_ms > low.p95_ms);
        assert!(high.utilization > low.utilization);
    }

    #[test]
    fn latency_falls_with_more_cores() {
        let m = memcached();
        let few = m.latency(4, 2.2, 10, 14_000.0, 1.0);
        let many = m.latency(10, 2.2, 10, 14_000.0, 1.0);
        assert!(many.p95_ms < few.p95_ms);
    }

    #[test]
    fn latency_falls_with_higher_frequency() {
        let m = memcached();
        let slow = m.latency(6, 1.2, 10, 14_000.0, 1.0);
        let fast = m.latency(6, 2.2, 10, 14_000.0, 1.0);
        assert!(fast.p95_ms < slow.p95_ms);
    }

    #[test]
    fn cache_inflation_monotone_and_saturating() {
        let m = memcached();
        let mut prev = f64::INFINITY;
        for w in 1..=20 {
            let infl = m.cache_inflation(w);
            assert!(infl <= prev, "inflation must not rise with more ways");
            assert!(infl >= 1.0);
            prev = infl;
        }
        assert_eq!(m.cache_inflation(m.params.cache_sat_ways), 1.0);
        assert_eq!(m.cache_inflation(20), 1.0);
    }

    #[test]
    fn saturation_blows_the_target() {
        let m = memcached();
        // 1 core at min frequency cannot serve 30k QPS.
        let l = m.latency(1, 1.2, 10, 30_000.0, 1.0);
        assert!(l.utilization > 1.0);
        assert!(l.p95_ms > 2.0 * m.params.qos_target_ms);
        assert!(l.in_target_fraction < 0.3);
    }

    #[test]
    fn interference_inflates_latency() {
        let m = memcached();
        let clean = m.latency(6, 1.8, 8, 14_000.0, 1.0);
        let noisy = m.latency(6, 1.8, 8, 14_000.0, 1.3);
        assert!(noisy.p95_ms > clean.p95_ms);
    }

    #[test]
    fn peak_load_feasible_on_whole_node() {
        // The machine must be able to serve every LS service's peak load —
        // the premise of the paper's budget definition.
        for m in ls_services() {
            let l = m.latency(20, 2.2, 20, m.params.peak_qps, 1.0);
            assert!(
                l.p95_ms <= m.params.qos_target_ms,
                "{} violates QoS at peak: {:.2} ms",
                m.params.name,
                l.p95_ms
            );
        }
    }

    #[test]
    fn low_load_needs_few_resources() {
        // At 20% of peak, a fraction of the node must suffice (otherwise
        // no co-location opportunity exists and the paper's premise dies).
        for m in ls_services() {
            let qps = 0.2 * m.params.peak_qps;
            let l = m.latency(6, 2.2, 10, qps, 1.0);
            assert!(
                l.p95_ms <= m.params.qos_target_ms,
                "{} cannot run 20% load on 6 cores: {:.2} ms",
                m.params.name,
                l.p95_ms
            );
        }
    }

    #[test]
    fn in_target_consistent_with_p95() {
        // p95 below target ⟺ at least 95% of queries in target (up to
        // numerical tolerance at the boundary).
        let m = memcached();
        for qps in [6_000.0, 12_000.0, 20_000.0, 28_000.0] {
            for cores in [2u32, 4, 8, 12] {
                let l = m.latency(cores, 1.8, 8, qps, 1.0);
                if l.utilization >= 1.0 {
                    continue;
                }
                if l.p95_ms < 0.99 * m.params.qos_target_ms {
                    assert!(
                        l.in_target_fraction >= 0.949,
                        "cores={cores} qps={qps}: p95={} frac={}",
                        l.p95_ms,
                        l.in_target_fraction
                    );
                } else if l.p95_ms > 1.01 * m.params.qos_target_ms {
                    assert!(
                        l.in_target_fraction <= 0.951,
                        "cores={cores} qps={qps}: p95={} frac={}",
                        l.p95_ms,
                        l.in_target_fraction
                    );
                }
            }
        }
    }

    #[test]
    fn power_utilization_has_floor_and_ceiling() {
        let m = memcached();
        assert!((m.power_utilization(0.0) - 0.35).abs() < 1e-12);
        assert!((m.power_utilization(1.0) - 1.0).abs() < 1e-12);
        assert!((m.power_utilization(5.0) - 1.0).abs() < 1e-12);
    }
}
