//! M/M/c queueing mathematics used as the backbone of the LS latency
//! ground truth.
//!
//! An LS service with `c` cores serving Poisson arrivals at rate `λ` with
//! per-query mean service time `S` behaves to first order like an M/M/c
//! queue with `μ = 1/S`. Tail latency is dominated by the Erlang-C waiting
//! probability near saturation — the "hockey stick" every tail-latency
//! paper (including Sturgeon) exploits: plenty of slack until utilization
//! approaches 1, then an explosive cliff.

/// Erlang-B blocking probability, computed with the standard stable
/// iteration `B(0)=1, B(k) = a·B(k−1) / (k + a·B(k−1))`.
pub fn erlang_b(servers: u32, offered_load: f64) -> f64 {
    let a = offered_load.max(0.0);
    let mut b = 1.0;
    for k in 1..=servers {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang-C probability that an arriving query must wait,
/// `C(c, a) = c·B / (c − a·(1 − B))`.
///
/// For `a ≥ c` (saturated) the probability is 1.
pub fn erlang_c(servers: u32, offered_load: f64) -> f64 {
    let c = servers as f64;
    let a = offered_load.max(0.0);
    if a >= c {
        return 1.0;
    }
    let b = erlang_b(servers, a);
    let denom = c - a * (1.0 - b);
    if denom <= 0.0 {
        return 1.0;
    }
    (c * b / denom).min(1.0)
}

/// Steady-state metrics of an M/M/c queue.
///
/// ```
/// use sturgeon_workloads::queueing::MmcQueue;
///
/// // 8 cores at 1000 queries/s each, offered 6000 QPS: ρ = 0.75.
/// let q = MmcQueue { servers: 8, arrival_rate: 6000.0, service_rate: 1000.0 };
/// assert!((q.utilization() - 0.75).abs() < 1e-12);
/// assert!(!q.is_saturated());
/// assert!(q.wait_quantile_s(0.99) >= q.wait_quantile_s(0.95));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcQueue {
    /// Number of servers (cores).
    pub servers: u32,
    /// Arrival rate λ (queries/s).
    pub arrival_rate: f64,
    /// Per-server service rate μ (queries/s).
    pub service_rate: f64,
}

impl MmcQueue {
    /// Offered load `a = λ/μ` in Erlangs.
    pub fn offered_load(&self) -> f64 {
        if self.service_rate <= 0.0 {
            return f64::INFINITY;
        }
        self.arrival_rate / self.service_rate
    }

    /// Server utilization `ρ = λ/(c·μ)`; values ≥ 1 mean saturation.
    pub fn utilization(&self) -> f64 {
        self.offered_load() / self.servers.max(1) as f64
    }

    /// True when arrivals exceed total service capacity.
    pub fn is_saturated(&self) -> bool {
        self.utilization() >= 1.0
    }

    /// Probability an arriving query waits (Erlang-C).
    pub fn wait_probability(&self) -> f64 {
        if self.is_saturated() {
            return 1.0;
        }
        erlang_c(self.servers, self.offered_load())
    }

    /// Mean queueing delay `Wq = C / (c·μ − λ)` in seconds
    /// (excluding service). Infinite when saturated.
    pub fn mean_wait_s(&self) -> f64 {
        if self.is_saturated() {
            return f64::INFINITY;
        }
        let spare = self.servers as f64 * self.service_rate - self.arrival_rate;
        self.wait_probability() / spare
    }

    /// The `q`-quantile of queueing delay in seconds. For M/M/c the wait
    /// distribution is `P(Wq > t) = C·exp(−(cμ−λ)t)`, so the quantile is
    /// `ln(C/(1−q)) / (cμ−λ)` when `C > 1−q`, else 0.
    pub fn wait_quantile_s(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
        if self.is_saturated() {
            return f64::INFINITY;
        }
        let c_prob = self.wait_probability();
        let tail = 1.0 - q;
        if c_prob <= tail {
            return 0.0;
        }
        let spare = self.servers as f64 * self.service_rate - self.arrival_rate;
        (c_prob / tail).ln() / spare
    }

    /// Fraction of queries whose *queueing delay* stays below `t` seconds:
    /// `1 − C·exp(−(cμ−λ)·t)`. Zero spare capacity gives 0.
    pub fn wait_below_fraction(&self, t: f64) -> f64 {
        if self.is_saturated() {
            return 0.0;
        }
        let spare = self.servers as f64 * self.service_rate - self.arrival_rate;
        (1.0 - self.wait_probability() * (-spare * t).exp()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // Classic telephony check: B(5, 3) ≈ 0.1101.
        assert!((erlang_b(5, 3.0) - 0.1101).abs() < 1e-3);
        // B(1, 1) = 0.5 exactly.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_known_values() {
        // C(2, 1) = 1/3 for the M/M/2 queue at ρ = 0.5.
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-9);
        // Deep under-load: waiting is near-impossible.
        assert!(erlang_c(20, 1.0) < 1e-12);
    }

    #[test]
    fn erlang_c_saturates_to_one() {
        assert_eq!(erlang_c(4, 4.0), 1.0);
        assert_eq!(erlang_c(4, 10.0), 1.0);
    }

    #[test]
    fn erlang_c_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..12 {
            let c = erlang_c(12, i as f64);
            assert!(c >= prev, "C must rise with load");
            prev = c;
        }
    }

    fn queue(c: u32, lambda: f64, mu: f64) -> MmcQueue {
        MmcQueue {
            servers: c,
            arrival_rate: lambda,
            service_rate: mu,
        }
    }

    #[test]
    fn utilization_and_saturation() {
        let q = queue(4, 3000.0, 1000.0);
        assert!((q.utilization() - 0.75).abs() < 1e-12);
        assert!(!q.is_saturated());
        let q = queue(4, 4000.0, 1000.0);
        assert!(q.is_saturated());
        assert_eq!(q.mean_wait_s(), f64::INFINITY);
    }

    #[test]
    fn mean_wait_matches_formula() {
        let q = queue(2, 1000.0, 1000.0);
        // C(2,1) = 1/3, spare = 1000 → Wq = 1/3000 s.
        assert!((q.mean_wait_s() - 1.0 / 3000.0).abs() < 1e-9);
    }

    #[test]
    fn wait_quantile_grows_with_q() {
        let q = queue(4, 3600.0, 1000.0);
        let w50 = q.wait_quantile_s(0.5);
        let w95 = q.wait_quantile_s(0.95);
        let w99 = q.wait_quantile_s(0.99);
        assert!(w95 > w50);
        assert!(w99 > w95);
    }

    #[test]
    fn wait_quantile_zero_when_wait_unlikely() {
        let q = queue(20, 100.0, 1000.0);
        assert_eq!(q.wait_quantile_s(0.95), 0.0);
    }

    #[test]
    fn hockey_stick_near_saturation() {
        // p95 wait at ρ = 0.5 should be orders of magnitude below ρ = 0.98.
        let relaxed = queue(8, 4000.0, 1000.0).wait_quantile_s(0.95);
        let stressed = queue(8, 7840.0, 1000.0).wait_quantile_s(0.95);
        assert!(stressed > 50.0 * relaxed.max(1e-9));
    }

    #[test]
    fn wait_below_fraction_bounds() {
        let q = queue(4, 3000.0, 1000.0);
        assert!(q.wait_below_fraction(0.0) <= 1.0);
        assert!(q.wait_below_fraction(10.0) > 0.999);
        let sat = queue(4, 5000.0, 1000.0);
        assert_eq!(sat.wait_below_fraction(1.0), 0.0);
    }
}
