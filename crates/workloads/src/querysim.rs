//! Query-level discrete-event simulation of an LS service.
//!
//! The analytic model in [`crate::ls`] computes p95 latency from Erlang-C
//! formulas — fast and smooth, ideal for profiling sweeps and ground
//! truth. Real systems measure latency from *sampled queries*: noisy,
//! quantized, and correlated across intervals because the queue carries
//! state. This module provides that realism:
//!
//! * open-loop Poisson arrivals at the offered QPS;
//! * per-query service times drawn from a lognormal distribution whose
//!   mean matches the analytic model's `S(f, w)` and whose p95/mean ratio
//!   matches the service's `tail_mult`;
//! * `c` servers with FIFO dispatch to the earliest-available core;
//! * queue state (busy-server horizon) carried across intervals, so a
//!   saturated interval leaves a backlog the next interval must drain —
//!   exactly the dynamics that make tail latency hard.
//!
//! [`MeasuredColocation`] wraps a [`CoLocationEnv`] and replaces the
//! analytic latency observation with a measured one, so any controller
//! can be evaluated against sampled telemetry instead of closed forms
//! (see the `measured_vs_analytic` integration test and the
//! `querysim_validation` example).

use crate::env::{CoLocationEnv, Observation};
use crate::ls::LsServiceModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use sturgeon_simnode::PairConfig;

/// Latency statistics measured from the queries of one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredLatency {
    /// Queries that arrived during the interval.
    pub arrivals: usize,
    /// Measured mean response time (ms) of those queries.
    pub mean_ms: f64,
    /// Measured p50 (ms).
    pub p50_ms: f64,
    /// Measured p95 (ms).
    pub p95_ms: f64,
    /// Measured p99 (ms).
    pub p99_ms: f64,
    /// Fraction of the interval's queries within the QoS target.
    pub in_target_fraction: f64,
}

impl MeasuredLatency {
    fn idle() -> Self {
        Self {
            arrivals: 0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            in_target_fraction: 1.0,
        }
    }
}

/// Converts a p95/mean ratio into the σ of a lognormal distribution.
///
/// For `X ~ LogNormal(μ, σ)`: `mean = exp(μ + σ²/2)` and
/// `p95 = exp(μ + 1.6449 σ)`, so `p95/mean = exp(1.6449 σ − σ²/2)`.
/// Solved by bisection on σ ∈ (0, 1.64) (the ratio is unimodal there and
/// every practical tail_mult ∈ (1, 3.8) falls on the rising branch).
pub fn lognormal_sigma_for_tail_ratio(ratio: f64) -> f64 {
    const Z95: f64 = 1.6448536269514722;
    if ratio <= 1.0 {
        return 0.0;
    }
    let target = ratio.ln();
    let f = |s: f64| Z95 * s - 0.5 * s * s;
    let (mut lo, mut hi) = (0.0f64, Z95); // f rises on [0, z95]
    let target = target.min(f(Z95) - 1e-9);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Discrete-event M/G/c simulator for one LS service.
#[derive(Debug, Clone)]
pub struct QueryLevelSim {
    ls: LsServiceModel,
    rng: StdRng,
    /// Next-free times of the busiest servers, relative to "now" (s).
    /// Only entries > 0 matter; the backlog carried between intervals.
    busy_until: Vec<f64>,
    /// Cap on simulated arrivals per interval, for memory safety at
    /// extreme loads (sampling above this is statistically pointless).
    max_queries_per_interval: usize,
}

impl QueryLevelSim {
    /// Creates the simulator with a deterministic seed.
    pub fn new(ls: LsServiceModel, seed: u64) -> Self {
        Self {
            ls,
            rng: StdRng::seed_from_u64(seed),
            busy_until: Vec::new(),
            max_queries_per_interval: 120_000,
        }
    }

    /// The service model being simulated.
    pub fn ls(&self) -> &LsServiceModel {
        &self.ls
    }

    /// Clears any carried backlog (e.g. after a long idle gap).
    pub fn reset_backlog(&mut self) {
        self.busy_until.clear();
    }

    /// Outstanding backlog horizon in seconds (0 when idle).
    pub fn backlog_horizon_s(&self) -> f64 {
        self.busy_until.iter().copied().fold(0.0, f64::max)
    }

    /// Simulates `dt_s` seconds of arrivals at `qps` against `cores`
    /// servers whose mean service time is `service_ms` with the service's
    /// lognormal tail. Returns measured statistics for the interval's
    /// arrivals and carries leftover work into the next call.
    pub fn simulate_interval(
        &mut self,
        cores: u32,
        service_ms: f64,
        qps: f64,
        dt_s: f64,
    ) -> MeasuredLatency {
        let cores = cores.max(1) as usize;
        let target_ms = self.ls.params.qos_target_ms;

        // Initialize the per-server horizon, shifted to this interval's
        // time origin.
        let mut servers: BinaryHeap<Reverse<OrderedF64>> = BinaryHeap::with_capacity(cores);
        self.busy_until.resize(cores, 0.0);
        // If the core count shrank, merge the overflow backlog onto the
        // remaining cores (cpuset shrink migrates threads).
        if self.busy_until.len() > cores {
            let overflow: f64 = self.busy_until[cores..].iter().sum();
            self.busy_until.truncate(cores);
            let spread = overflow / cores as f64;
            for b in &mut self.busy_until {
                *b += spread;
            }
        }
        for &b in &self.busy_until {
            servers.push(Reverse(OrderedF64(b.max(0.0))));
        }

        if qps <= 0.0 {
            // Idle interval: just age the backlog.
            for b in &mut self.busy_until {
                *b = (*b - dt_s).max(0.0);
            }
            return MeasuredLatency::idle();
        }

        let sigma = lognormal_sigma_for_tail_ratio(self.ls.params.tail_mult);
        let mean_s = (service_ms / 1000.0).max(1e-9);
        // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) − sigma²/2
        let mu = mean_s.ln() - 0.5 * sigma * sigma;

        let mut responses_ms: Vec<f64> = Vec::with_capacity((qps * dt_s) as usize + 16);
        let mut t = 0.0f64;
        loop {
            t += sample_exponential(&mut self.rng, qps);
            if t >= dt_s || responses_ms.len() >= self.max_queries_per_interval {
                break;
            }
            let Reverse(OrderedF64(free_at)) = servers.pop().expect("servers non-empty");
            let start = free_at.max(t);
            let service = (mu + sigma * sample_standard_normal(&mut self.rng)).exp();
            let done = start + service;
            servers.push(Reverse(OrderedF64(done)));
            responses_ms.push((done - t) * 1000.0);
        }

        // Persist the horizon for the next interval, re-origined.
        self.busy_until.clear();
        while let Some(Reverse(OrderedF64(done))) = servers.pop() {
            self.busy_until.push((done - dt_s).max(0.0));
        }

        if responses_ms.is_empty() {
            return MeasuredLatency::idle();
        }
        responses_ms.sort_unstable_by(f64::total_cmp);
        let n = responses_ms.len();
        let pct = |q: f64| responses_ms[(((n as f64) * q) as usize).min(n - 1)];
        let in_target = responses_ms.iter().filter(|&&r| r <= target_ms).count() as f64 / n as f64;
        MeasuredLatency {
            arrivals: n,
            mean_ms: responses_ms.iter().sum::<f64>() / n as f64,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            in_target_fraction: in_target,
        }
    }
}

/// Inverse-CDF exponential sample with rate `lambda` (inter-arrival gap).
#[inline]
fn sample_exponential(rng: &mut StdRng, lambda: f64) -> f64 {
    // 1 − U ∈ (0, 1]: avoids ln(0).
    let u: f64 = rng.gen::<f64>();
    -(1.0 - u).max(f64::MIN_POSITIVE).ln() / lambda
}

/// Standard normal sample via the Box–Muller transform.
#[inline]
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Total-order f64 wrapper for the server heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A co-location whose latency telemetry is *measured* from simulated
/// queries instead of computed analytically. Power, BE throughput and the
/// interference process still come from the wrapped [`CoLocationEnv`];
/// only the latency channel changes.
#[derive(Debug, Clone)]
pub struct MeasuredColocation {
    env: CoLocationEnv,
    sim: QueryLevelSim,
}

impl MeasuredColocation {
    /// Wraps an environment; `seed` drives the query-level randomness.
    pub fn new(env: CoLocationEnv, seed: u64) -> Self {
        let sim = QueryLevelSim::new(env.ls().clone(), seed);
        Self { env, sim }
    }

    /// The wrapped analytic environment.
    pub fn env(&self) -> &CoLocationEnv {
        &self.env
    }

    /// One 1-second interval with measured latency.
    pub fn step(&mut self, config: &PairConfig, qps: f64) -> Observation {
        // Analytic step supplies power, throughput and the disturbance.
        let analytic = self.env.step(config, qps);
        let spec = self.env.spec();
        let ls_f = config.ls.freq_ghz(spec);
        // Reconstruct the disturbed service time the analytic path used
        // and feed it to the event simulator; the additive term shifts
        // measured responses uniformly.
        let service_ms =
            self.env
                .ls()
                .service_time_ms(ls_f, config.ls.llc_ways, analytic.interference);
        let measured = self
            .sim
            .simulate_interval(config.ls.cores, service_ms, qps, 1.0);
        // Additive disturbance (memory-controller queueing) applies to
        // every query; recompute the in-target fraction against the
        // shifted distribution.
        let additive = (analytic.p95_ms
            - self
                .env
                .ls()
                .latency(
                    config.ls.cores,
                    ls_f,
                    config.ls.llc_ways,
                    qps,
                    analytic.interference,
                )
                .p95_ms)
            .max(0.0);
        let target = self.env.ls().params.qos_target_ms;
        let in_target = if measured.arrivals == 0 {
            1.0
        } else {
            // Shift: a query makes the target if its measured response
            // plus the additive term fits.
            measured.in_target_shifted(target, additive)
        };
        Observation {
            p95_ms: measured.p95_ms + additive,
            in_target_fraction: in_target,
            ..analytic
        }
    }
}

impl MeasuredLatency {
    /// Fraction within `target_ms` when every response is shifted by
    /// `additive_ms`. Only the summary stats are kept between intervals,
    /// so this interpolates between the recorded percentiles.
    fn in_target_shifted(&self, target_ms: f64, additive_ms: f64) -> f64 {
        let effective = target_ms - additive_ms;
        if effective <= 0.0 {
            return 0.0;
        }
        // Piecewise estimate from the recorded quantiles.
        if self.p50_ms > effective {
            return (0.5 * effective / self.p50_ms).clamp(0.0, 0.5);
        }
        if self.p95_ms > effective {
            // Linear between p50 (0.5) and p95 (0.95).
            let span = (self.p95_ms - self.p50_ms).max(1e-9);
            return 0.5 + 0.45 * ((effective - self.p50_ms) / span).clamp(0.0, 1.0);
        }
        if self.p99_ms > effective {
            let span = (self.p99_ms - self.p95_ms).max(1e-9);
            return 0.95 + 0.04 * ((effective - self.p95_ms) / span).clamp(0.0, 1.0);
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use crate::interference::InterferenceParams;
    use sturgeon_simnode::{Allocation, NodeSpec, PowerModel};

    fn memcached_sim(seed: u64) -> QueryLevelSim {
        QueryLevelSim::new(ls_service(LsServiceId::Memcached), seed)
    }

    #[test]
    fn sigma_solver_roundtrips() {
        for ratio in [1.1, 1.3, 1.6, 2.0, 2.5] {
            let sigma = lognormal_sigma_for_tail_ratio(ratio);
            let back = (1.6448536269514722 * sigma - 0.5 * sigma * sigma).exp();
            assert!((back - ratio).abs() < 1e-6, "ratio {ratio}: got {back}");
        }
        assert_eq!(lognormal_sigma_for_tail_ratio(1.0), 0.0);
        assert_eq!(lognormal_sigma_for_tail_ratio(0.5), 0.0);
    }

    #[test]
    fn measured_p95_matches_analytic_at_moderate_load() {
        // At ρ ≈ 0.6 the analytic Erlang-C p95 and the event-simulated
        // p95 must agree within sampling noise.
        let ls = ls_service(LsServiceId::Memcached);
        let mut sim = memcached_sim(42);
        let cores = 8u32;
        let qps = 12_000.0;
        let service_ms = ls.service_time_ms(2.2, 10, 1.0);
        // Warm up, then average several intervals.
        let mut measured = Vec::new();
        for _ in 0..12 {
            let m = sim.simulate_interval(cores, service_ms, qps, 1.0);
            measured.push(m.p95_ms);
        }
        let measured_p95 = measured[2..].iter().sum::<f64>() / (measured.len() - 2) as f64;
        let analytic = ls.latency(cores, 2.2, 10, qps, 1.0).p95_ms;
        let rel = (measured_p95 - analytic).abs() / analytic;
        assert!(
            rel < 0.30,
            "measured {measured_p95:.3} vs analytic {analytic:.3} (rel {rel:.2})"
        );
    }

    #[test]
    fn saturation_grows_backlog_and_latency() {
        let ls = ls_service(LsServiceId::Memcached);
        let mut sim = memcached_sim(7);
        let service_ms = ls.service_time_ms(1.2, 2, 1.0);
        // 2 cores cannot serve 12k QPS at this service time.
        let first = sim.simulate_interval(2, service_ms, 12_000.0, 1.0);
        let second = sim.simulate_interval(2, service_ms, 12_000.0, 1.0);
        assert!(sim.backlog_horizon_s() > 0.5, "no backlog accumulated");
        assert!(second.p95_ms > first.p95_ms, "backlog must compound");
        assert!(second.in_target_fraction < 0.5);
    }

    #[test]
    fn backlog_drains_when_load_drops() {
        let ls = ls_service(LsServiceId::Memcached);
        let mut sim = memcached_sim(9);
        let service_ms = ls.service_time_ms(1.2, 2, 1.0);
        for _ in 0..3 {
            sim.simulate_interval(2, service_ms, 12_000.0, 1.0);
        }
        let backlog = sim.backlog_horizon_s();
        assert!(backlog > 0.0);
        // Give it 16 fast cores and light load: the backlog must drain.
        let fast_ms = ls.service_time_ms(2.2, 20, 1.0);
        for _ in 0..4 {
            sim.simulate_interval(16, fast_ms, 1_000.0, 1.0);
        }
        assert!(sim.backlog_horizon_s() < backlog);
    }

    #[test]
    fn idle_interval_reports_idle() {
        let mut sim = memcached_sim(3);
        let m = sim.simulate_interval(4, 0.3, 0.0, 1.0);
        assert_eq!(m.arrivals, 0);
        assert_eq!(m.in_target_fraction, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let ls = ls_service(LsServiceId::Memcached);
        let service_ms = ls.service_time_ms(1.8, 8, 1.0);
        let mut a = memcached_sim(11);
        let mut b = memcached_sim(11);
        for _ in 0..5 {
            assert_eq!(
                a.simulate_interval(6, service_ms, 9_000.0, 1.0),
                b.simulate_interval(6, service_ms, 9_000.0, 1.0)
            );
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let ls = ls_service(LsServiceId::Xapian);
        let mut sim = QueryLevelSim::new(ls.clone(), 13);
        let service_ms = ls.service_time_ms(2.0, 10, 1.0);
        let m = sim.simulate_interval(6, service_ms, 1_000.0, 1.0);
        assert!(m.p50_ms <= m.p95_ms);
        assert!(m.p95_ms <= m.p99_ms);
        assert!(m.mean_ms > 0.0);
    }

    #[test]
    fn shrinking_cores_preserves_backlog_work() {
        let ls = ls_service(LsServiceId::Memcached);
        let mut sim = memcached_sim(17);
        let service_ms = ls.service_time_ms(1.4, 4, 1.0);
        for _ in 0..2 {
            sim.simulate_interval(8, service_ms, 20_000.0, 1.0);
        }
        let before = sim.backlog_horizon_s();
        // Shrink to 3 cores: overflow redistributed, never silently lost.
        sim.simulate_interval(3, service_ms, 100.0, 1.0);
        // With almost no new arrivals and a huge prior backlog, the
        // horizon must still reflect carried work (allow drain of dt).
        assert!(
            sim.backlog_horizon_s() > before - 1.5,
            "backlog lost on shrink: {before} -> {}",
            sim.backlog_horizon_s()
        );
    }

    #[test]
    fn measured_colocation_observation_sane() {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        );
        let mut m = MeasuredColocation::new(env, 5);
        let cfg = sturgeon_simnode::PairConfig::new(
            Allocation::new(8, 9, 10),
            Allocation::new(12, 5, 10),
        );
        let obs = m.step(&cfg, 12_000.0);
        assert!(obs.p95_ms > 0.0);
        assert!((0.0..=1.0).contains(&obs.in_target_fraction));
        assert!(obs.power_w > 0.0);
        // Under-loaded: the measured tail should comfortably meet QoS.
        assert!(obs.p95_ms < 10.0, "p95 {}", obs.p95_ms);
    }

    #[test]
    fn in_target_shifted_piecewise() {
        let m = MeasuredLatency {
            arrivals: 100,
            mean_ms: 2.0,
            p50_ms: 2.0,
            p95_ms: 6.0,
            p99_ms: 9.0,
            in_target_fraction: 1.0,
        };
        assert_eq!(m.in_target_shifted(10.0, 0.0), 1.0);
        // Effective target 4ms sits between p50 and p95.
        let f = m.in_target_shifted(10.0, 6.0);
        assert!((0.5..0.95).contains(&f), "{f}");
        // Effective target below p50.
        let f = m.in_target_shifted(10.0, 9.0);
        assert!(f < 0.5);
        // Additive beyond the target: nothing makes it.
        assert_eq!(m.in_target_shifted(10.0, 11.0), 0.0);
    }
}
