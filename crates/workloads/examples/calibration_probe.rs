//! Dev probe: prints Fig2 overload per pair and Fig3 preference checks.
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig, PowerModel};
use sturgeon_workloads::catalog::*;
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

fn main() {
    let spec = NodeSpec::xeon_e5_2630_v4();
    println!("== Fig 2: overload % (LS at 20%, just-enough LS alloc, BE rest @max) ==");
    for (ls_id, be_id) in all_pairs() {
        let e = CoLocationEnv::new(
            spec.clone(),
            PowerModel::default(),
            ls_service(ls_id),
            be_app(be_id),
            InterferenceParams::none(),
            0,
        );
        let ls = e.ls().clone();
        let qps = 0.2 * ls.params.peak_qps;
        let ways = 6u32;
        let fl = 5usize;
        let f = spec.freq_ghz(fl);
        let min_c = (1..=19).find(|&c| ls.meets_qos(c, f, ways, qps)).unwrap();
        let cfg = PairConfig::new(
            Allocation::new(min_c, fl, ways),
            Allocation::new(20 - min_c, 9, 20 - ways),
        );
        let over = e.total_power(&cfg, qps) / e.budget_w() - 1.0;
        println!(
            "{:>10}+{:<13} minC={:2} budget={:6.1} over={:+.1}%",
            ls_id.name(),
            be_id.name(),
            min_c,
            e.budget_w(),
            over * 100.0
        );
    }
    println!("\n== Fig 3-style: BE preference at 20% and 35% memcached load ==");
    let ls = ls_service(LsServiceId::Memcached);
    for load in [0.2, 0.35] {
        let qps = load * ls.params.peak_qps;
        for be_id in BeAppId::all() {
            let e = CoLocationEnv::new(
                spec.clone(),
                PowerModel::default(),
                ls.clone(),
                be_app(be_id),
                InterferenceParams::none(),
                0,
            );
            let budget = e.budget_w();
            let mut cands: Vec<(PairConfig, f64)> = Vec::new();
            for c1 in 1..=19u32 {
                let mut found = None;
                'outer: for f1 in 0..10usize {
                    for l1 in 1..=19u32 {
                        if ls.meets_qos(c1, spec.freq_ghz(f1), l1, qps) {
                            found = Some((f1, l1));
                            break 'outer;
                        }
                    }
                }
                let Some((f1, l1)) = found else { continue };
                let c2 = 20 - c1;
                let l2 = 20 - l1;
                let mut bestf2 = None;
                for f2 in (0..10usize).rev() {
                    let cfg =
                        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
                    if e.total_power(&cfg, qps) <= budget {
                        bestf2 = Some(f2);
                        break;
                    }
                }
                let Some(f2) = bestf2 else { continue };
                let cfg = PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
                let t = e.be().normalized_throughput(c2, spec.freq_ghz(f2), l2);
                cands.push((cfg, t));
            }
            let most_cores = cands
                .iter()
                .max_by(|a, b| a.0.be.cores.cmp(&b.0.be.cores).then(a.1.total_cmp(&b.1)))
                .unwrap();
            let max_freq = cands
                .iter()
                .max_by(|a, b| {
                    a.0.be
                        .freq_level
                        .cmp(&b.0.be.freq_level)
                        .then(a.1.total_cmp(&b.1))
                })
                .unwrap();
            let best = cands.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
            let pref = if best.0.be.cores == most_cores.0.be.cores {
                "CORES"
            } else if best.0.be.freq_level == max_freq.0.be.freq_level {
                "FREQ"
            } else {
                "MID"
            };
            println!("load {:.0}% {:13} mostCores {} t={:.3} | maxFreq {} t={:.3} | best {} t={:.3} -> {}",
                load*100.0, be_id.name(), most_cores.0, most_cores.1, max_freq.0, max_freq.1, best.0, best.1, pref);
        }
    }
}
