//! Lasso (L1-regularized least squares) via cyclic coordinate descent.
//!
//! The paper (§V-A) uses Lasso regression to select the four
//! high-correlation features (input size, cores, frequency, LLC ways) that
//! feed every performance/power model. Coordinate descent with the
//! soft-thresholding operator is the standard solver (Friedman et al.,
//! "Pathwise coordinate optimization").

use crate::model::{Dataset, MlError, Regressor};

/// Lasso regression `min ½n‖y − Xw − b‖² + λ‖w‖₁`.
#[derive(Debug, Clone)]
pub struct Lasso {
    /// L1 penalty λ. Larger values zero out more coefficients.
    pub lambda: f64,
    /// Convergence tolerance on the maximum coefficient update.
    pub tol: f64,
    /// Hard cap on coordinate-descent sweeps.
    pub max_iter: usize,
    weights: Vec<f64>,
    intercept: f64,
    /// Column means/stds captured during fit (internal standardization
    /// makes λ scale-free, matching scikit-learn behaviour).
    col_mean: Vec<f64>,
    col_std: Vec<f64>,
    y_mean: f64,
}

impl Lasso {
    /// Creates a Lasso solver with penalty `lambda`.
    pub fn new(lambda: f64) -> Self {
        Self {
            lambda,
            tol: 1e-8,
            max_iter: 10_000,
            weights: Vec::new(),
            intercept: 0.0,
            col_mean: Vec::new(),
            col_std: Vec::new(),
            y_mean: 0.0,
        }
    }

    /// Fitted coefficients in the *original* (unstandardized) feature space.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept in the original feature space.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Indices of features with non-zero coefficients — the paper's
    /// feature-selection output.
    pub fn selected_features(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| w.abs() > 1e-10)
            .map(|(i, _)| i)
            .collect()
    }
}

fn soft_threshold(z: f64, g: f64) -> f64 {
    if z > g {
        z - g
    } else if z < -g {
        z + g
    } else {
        0.0
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if self.lambda < 0.0 {
            return Err(MlError::InvalidParameter("lambda must be ≥ 0".into()));
        }
        let n = data.len();
        let d = data.dims();
        let nf = n as f64;

        // Standardize columns and center targets so λ is scale-free.
        let mut mean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= nf;
        }
        let mut std = vec![0.0; d];
        for row in &data.x {
            for ((s, v), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut std {
            *s = (*s / nf).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        let y_mean = data.y.iter().sum::<f64>() / nf;

        // Column-major standardized design matrix for cache-friendly
        // coordinate sweeps.
        let cols: Vec<Vec<f64>> = (0..d)
            .map(|j| {
                data.x
                    .iter()
                    .map(|row| (row[j] - mean[j]) / std[j])
                    .collect()
            })
            .collect();
        let yc: Vec<f64> = data.y.iter().map(|y| y - y_mean).collect();

        let mut w = vec![0.0; d];
        let mut residual = yc.clone(); // r = y − Xw, maintained incrementally
        for _ in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..d {
                let col = &cols[j];
                // rho = (1/n) Σ x_ij (r_i + w_j x_ij)
                let mut rho = 0.0;
                for (xi, ri) in col.iter().zip(&residual) {
                    rho += xi * ri;
                }
                rho = rho / nf + w[j]; // columns have unit variance
                let new_w = soft_threshold(rho, self.lambda);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (ri, xi) in residual.iter_mut().zip(col) {
                        *ri -= delta * xi;
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        // Map back to the original feature space.
        self.weights = w.iter().zip(&std).map(|(wj, s)| wj / s).collect();
        self.intercept = y_mean
            - self
                .weights
                .iter()
                .zip(&mean)
                .map(|(wj, m)| wj * m)
                .sum::<f64>();
        self.col_mean = mean;
        self.col_std = std;
        self.y_mean = y_mean;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;
    use rand::{Rng, SeedableRng};

    fn noisy_linear(seed: u64) -> Dataset {
        // y = 4*x0 + 0*x1 + 2*x2 + noise; x1 is irrelevant.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                vec![
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..10.0),
                ]
            })
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 4.0 * r[0] + 2.0 * r[2] + rng.gen_range(-0.1..0.1))
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn near_zero_lambda_recovers_ols() {
        let data = noisy_linear(1);
        let mut l = Lasso::new(1e-6);
        l.fit(&data).unwrap();
        assert!((l.weights()[0] - 4.0).abs() < 0.05, "{:?}", l.weights());
        assert!(l.weights()[1].abs() < 0.05);
        assert!((l.weights()[2] - 2.0).abs() < 0.05);
    }

    #[test]
    fn selects_relevant_features() {
        let data = noisy_linear(2);
        let mut l = Lasso::new(0.5);
        l.fit(&data).unwrap();
        let sel = l.selected_features();
        assert!(sel.contains(&0), "selected {sel:?}");
        assert!(sel.contains(&2), "selected {sel:?}");
        assert!(!sel.contains(&1), "irrelevant feature kept: {sel:?}");
    }

    #[test]
    fn huge_lambda_zeroes_everything() {
        let data = noisy_linear(3);
        let mut l = Lasso::new(1e6);
        l.fit(&data).unwrap();
        assert!(l.selected_features().is_empty());
        // Prediction degenerates to the target mean.
        let mean = data.y.iter().sum::<f64>() / data.len() as f64;
        assert!((l.predict(&[1.0, 1.0, 1.0]) - mean).abs() < 1e-6);
    }

    #[test]
    fn fit_quality_is_high_on_linear_data() {
        let data = noisy_linear(4);
        let mut l = Lasso::new(0.01);
        l.fit(&data).unwrap();
        let pred = l.predict_batch(&data.x);
        assert!(r2_score(&data.y, &pred) > 0.99);
    }

    #[test]
    fn rejects_negative_lambda() {
        let data = noisy_linear(5);
        let mut l = Lasso::new(-1.0);
        assert!(l.fit(&data).is_err());
    }

    #[test]
    fn soft_threshold_shrinks_towards_zero() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }
}
