//! Gradient-boosted regression trees (least-squares boosting).
//!
//! The second ensemble extension beyond the paper's Fig. 6/7 lineup
//! (alongside [`crate::forest`]): stage-wise fitting of shallow CART
//! trees to the residuals of the running prediction, shrunk by a learning
//! rate. On Sturgeon's smooth power/throughput surfaces a few dozen depth-3
//! trees match KNN's accuracy with O(depth) prediction cost, which is why
//! the `prediction_latency` bench includes it.

use crate::model::{Dataset, MlError, Regressor};
use crate::tree::{DecisionTreeRegressor, TreeParams};

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbrtParams {
    /// Number of boosting stages.
    pub stages: usize,
    /// Shrinkage per stage in `(0, 1]`.
    pub learning_rate: f64,
    /// Structure of each weak learner (shallow by default).
    pub tree: TreeParams,
}

impl Default for GbrtParams {
    fn default() -> Self {
        Self {
            stages: 60,
            learning_rate: 0.2,
            tree: TreeParams {
                max_depth: 3,
                min_samples_split: 4,
                min_samples_leaf: 2,
            },
        }
    }
}

/// Gradient-boosted regressor.
#[derive(Debug, Clone, Default)]
pub struct GbrtRegressor {
    /// Hyper-parameters.
    pub params: GbrtParams,
    base: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GbrtRegressor {
    /// A regressor with the given parameters.
    pub fn new(params: GbrtParams) -> Self {
        Self {
            params,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    /// Number of fitted stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Training-set RMSE after each stage (useful to pick `stages`);
    /// only meaningful right after `fit`.
    pub fn staged_rmse(&self, data: &Dataset) -> Vec<f64> {
        let mut pred = vec![self.base; data.len()];
        let mut out = Vec::with_capacity(self.stages.len());
        for tree in &self.stages {
            for (p, row) in pred.iter_mut().zip(&data.x) {
                *p += self.params.learning_rate * tree.predict(row);
            }
            let mse = pred
                .iter()
                .zip(&data.y)
                .map(|(p, y)| (p - y).powi(2))
                .sum::<f64>()
                / data.len() as f64;
            out.push(mse.sqrt());
        }
        out
    }
}

impl Regressor for GbrtRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if self.params.stages == 0 {
            return Err(MlError::InvalidParameter("stages must be ≥ 1".into()));
        }
        if !(0.0..=1.0).contains(&self.params.learning_rate) || self.params.learning_rate == 0.0 {
            return Err(MlError::InvalidParameter(
                "learning_rate must be in (0, 1]".into(),
            ));
        }
        self.base = data.y.iter().sum::<f64>() / data.len() as f64;
        self.stages.clear();
        let mut residual: Vec<f64> = data.y.iter().map(|y| y - self.base).collect();
        for _ in 0..self.params.stages {
            let stage_data = Dataset {
                x: data.x.clone(),
                y: residual.clone(),
            };
            let mut tree = DecisionTreeRegressor::new(self.params.tree);
            tree.fit(&stage_data)?;
            for (r, row) in residual.iter_mut().zip(&data.x) {
                *r -= self.params.learning_rate * tree.predict(row);
            }
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let mut out = self.base;
        for tree in &self.stages {
            out += self.params.learning_rate * tree.predict(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;
    use rand::{Rng, SeedableRng};

    fn friedmanish(seed: u64, n: usize) -> Dataset {
        // A mildly non-linear, interaction-bearing target.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                ]
            })
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 10.0 * (std::f64::consts::PI * r[0] * r[1]).sin() + 5.0 * r[2])
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn fits_nonlinear_interactions() {
        let data = friedmanish(1, 500);
        let mut g = GbrtRegressor::default();
        g.fit(&data).unwrap();
        let pred = g.predict_batch(&data.x);
        assert!(
            r2_score(&data.y, &pred) > 0.95,
            "{}",
            r2_score(&data.y, &pred)
        );
        assert_eq!(g.stage_count(), 60);
    }

    #[test]
    fn boosting_beats_a_single_shallow_tree() {
        let train = friedmanish(2, 400);
        let test = friedmanish(3, 200);
        let mut g = GbrtRegressor::default();
        g.fit(&train).unwrap();
        let mut single = DecisionTreeRegressor::new(GbrtParams::default().tree);
        single.fit(&train).unwrap();
        let g_r2 = r2_score(&test.y, &g.predict_batch(&test.x));
        let t_r2 = r2_score(&test.y, &single.predict_batch(&test.x));
        assert!(g_r2 > t_r2, "gbrt {g_r2} vs single tree {t_r2}");
    }

    #[test]
    fn staged_rmse_decreases() {
        let data = friedmanish(4, 300);
        let mut g = GbrtRegressor::default();
        g.fit(&data).unwrap();
        let rmse = g.staged_rmse(&data);
        assert_eq!(rmse.len(), 60);
        assert!(
            rmse.last().unwrap() < &rmse[0],
            "{:?}",
            (&rmse[0], rmse.last())
        );
        // Mostly monotone: no stage should blow the error up.
        for w in rmse.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "stage regressed: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn constant_target_is_exact() {
        let data = Dataset::new((0..20).map(|i| vec![i as f64]).collect(), vec![7.0; 20]).unwrap();
        let mut g = GbrtRegressor::default();
        g.fit(&data).unwrap();
        assert!((g.predict(&[3.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_params() {
        let data = friedmanish(5, 50);
        let mut g = GbrtRegressor::new(GbrtParams {
            stages: 0,
            ..GbrtParams::default()
        });
        assert!(g.fit(&data).is_err());
        let mut g = GbrtRegressor::new(GbrtParams {
            learning_rate: 0.0,
            ..GbrtParams::default()
        });
        assert!(g.fit(&data).is_err());
    }

    #[test]
    fn deterministic() {
        let data = friedmanish(6, 200);
        let mut a = GbrtRegressor::default();
        let mut b = GbrtRegressor::default();
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[0.3, 0.6, 0.9]), b.predict(&[0.3, 0.6, 0.9]));
    }
}
