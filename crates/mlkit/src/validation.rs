//! Model validation utilities: k-fold cross-validation and classification
//! diagnostics beyond plain accuracy.
//!
//! The paper scores each family once on a held-out split (Figs. 6/7);
//! cross-validation gives the same comparison with variance estimates,
//! which the `model_explorer` example and the model-selection tests use
//! to check that family rankings are stable and not split luck.

use crate::metrics::r2_score;
use crate::model::{Classifier, Dataset, MlError, Regressor};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Mean and standard deviation of per-fold scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvScore {
    /// Mean score across folds.
    pub mean: f64,
    /// Population standard deviation across folds.
    pub std: f64,
    /// Number of folds evaluated.
    pub folds: usize,
}

/// Splits `n` shuffled indices into `k` contiguous folds.
fn fold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidParameter("k must be ≥ 2".into()));
    }
    if n < k {
        return Err(MlError::InvalidDataset(format!(
            "cannot split {n} rows into {k} folds"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut cursor = 0;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        folds.push(idx[cursor..cursor + len].to_vec());
        cursor += len;
    }
    Ok(folds)
}

fn take(data: &Dataset, ids: impl Iterator<Item = usize>) -> Dataset {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in ids {
        x.push(data.x[i].clone());
        y.push(data.y[i]);
    }
    Dataset { x, y }
}

fn summarize(scores: &[f64]) -> CvScore {
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    CvScore {
        mean,
        std: var.sqrt(),
        folds: scores.len(),
    }
}

/// k-fold cross-validated R² for a regressor factory.
pub fn cross_validate_regressor<R: Regressor>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make: impl FnMut() -> R,
) -> Result<CvScore, MlError> {
    let folds = fold_indices(data.len(), k, seed)?;
    let mut scores = Vec::with_capacity(k);
    for held_out in 0..k {
        let train_ids = folds
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != held_out)
            .flat_map(|(_, ids)| ids.iter().copied());
        let train = take(data, train_ids);
        let test = take(data, folds[held_out].iter().copied());
        let mut model = make();
        model.fit(&train)?;
        let pred = model.predict_batch(&test.x);
        scores.push(r2_score(&test.y, &pred));
    }
    Ok(summarize(&scores))
}

/// k-fold cross-validated accuracy for a classifier factory.
pub fn cross_validate_classifier<C: Classifier>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make: impl FnMut() -> C,
) -> Result<CvScore, MlError> {
    let folds = fold_indices(data.len(), k, seed)?;
    let mut scores = Vec::with_capacity(k);
    for held_out in 0..k {
        let train_ids = folds
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != held_out)
            .flat_map(|(_, ids)| ids.iter().copied());
        let train = take(data, train_ids);
        let test = take(data, folds[held_out].iter().copied());
        let mut model = make();
        model.fit(&train)?;
        let hits = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(row, &y)| model.predict_label(row) == (y == 1.0))
            .count();
        scores.push(hits as f64 / test.len().max(1) as f64);
    }
    Ok(summarize(&scores))
}

/// Binary-classification confusion counts and derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against truth.
    pub fn from_labels(truth: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut m = Self {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (true, true) => m.tp += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fn_ += 1,
            }
        }
        m
    }

    /// TP / (TP + FP); 1.0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 1.0;
        }
        self.tp as f64 / denom as f64
    }

    /// TP / (TP + FN); 1.0 when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 1.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// For Sturgeon's QoS classifier, the *false-positive rate* is the
    /// safety metric: a false positive is a configuration declared
    /// feasible that actually violates QoS. FP / (FP + TN).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            return 0.0;
        }
        self.fp as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnRegressor;
    use crate::logistic::LogisticRegression;
    use rand::{Rng, SeedableRng};

    fn linear_data(seed: u64, n: usize) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn folds_partition_all_rows() {
        let folds = fold_indices(103, 5, 1).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn cv_regressor_scores_high_on_learnable_data() {
        let data = linear_data(1, 200);
        let cv = cross_validate_regressor(&data, 5, 42, || KnnRegressor::new(3)).unwrap();
        assert!(cv.mean > 0.95, "cv mean {}", cv.mean);
        assert_eq!(cv.folds, 5);
        assert!(cv.std < 0.1);
    }

    #[test]
    fn cv_classifier_scores_high_on_separable_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen_range(-5.0..5.0)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let cv = cross_validate_classifier(&data, 4, 7, LogisticRegression::new).unwrap();
        assert!(cv.mean > 0.9, "cv mean {}", cv.mean);
    }

    #[test]
    fn cv_rejects_bad_parameters() {
        let data = linear_data(3, 10);
        assert!(cross_validate_regressor(&data, 1, 1, || KnnRegressor::new(1)).is_err());
        assert!(cross_validate_regressor(&data, 11, 1, || KnnRegressor::new(1)).is_err());
    }

    #[test]
    fn confusion_matrix_counts_and_rates() {
        let truth = [true, true, false, false, true];
        let pred = [true, false, true, false, true];
        let m = ConfusionMatrix::from_labels(&truth, &pred);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_degenerate_cases() {
        let m = ConfusionMatrix::from_labels(&[false, false], &[false, false]);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.false_positive_rate(), 0.0);
    }
}
