//! # sturgeon-mlkit
//!
//! A small, dependency-light machine-learning toolkit implemented from
//! scratch for the Sturgeon reproduction. Sturgeon's online predictor
//! (paper §V) relies on offline-trained performance and power models; the
//! paper evaluates six model families (Fig. 6 and Fig. 7) and selects
//! features with Lasso regression. This crate provides all of them:
//!
//! * [`linear::LinearRegression`] — ordinary least squares (ridge-stabilized)
//! * [`lasso::Lasso`] — L1-regularized regression via coordinate descent,
//!   used for the paper's feature selection
//! * [`logistic::LogisticRegression`] — binary classifier
//! * [`knn::KnnRegressor`] / [`knn::KnnClassifier`] — k-nearest neighbours
//! * [`tree::DecisionTreeRegressor`] / [`tree::DecisionTreeClassifier`] — CART
//! * [`mlp::MlpRegressor`] / [`mlp::MlpClassifier`] — multi-layer perceptron
//! * [`svm::SvmClassifier`] / [`svm::SvmRegressor`] — linear SVM via SGD
//!
//! All models implement the common [`model::Regressor`] or
//! [`model::Classifier`] traits so the predictor can swap families per
//! application, exactly as the paper stores "all offline-trained models on
//! the server and the most suitable one can be deployed" (§V-C).
//!
//! The implementations favour clarity and determinism over raw speed: the
//! feature spaces in Sturgeon are tiny (4 features — input size, cores,
//! frequency, LLC ways) and the datasets are thousands of rows, so O(n·d)
//! passes are more than fast enough (the paper reports 0.04 ms per
//! prediction; ours are comfortably below that).
//!
//! ```
//! use sturgeon_mlkit::{Dataset, KnnRegressor, Regressor, r2_score};
//!
//! // y = 2·x over a small grid.
//! let data = Dataset::new(
//!     (0..50).map(|i| vec![i as f64]).collect(),
//!     (0..50).map(|i| 2.0 * i as f64).collect(),
//! ).unwrap();
//! let mut model = KnnRegressor::new(3);
//! model.fit(&data).unwrap();
//! let pred = model.predict_batch(&data.x);
//! assert!(r2_score(&data.y, &pred) > 0.99);
//! ```

pub mod forest;
pub mod gbrt;
pub mod knn;
pub mod lasso;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod mf;
pub mod mlp;
pub mod model;
pub mod naive_bayes;
pub mod preprocess;
pub mod svm;
pub mod tree;
pub mod validation;

pub use forest::{ForestParams, RandomForestClassifier, RandomForestRegressor};
pub use gbrt::{GbrtParams, GbrtRegressor};
pub use knn::{KnnClassifier, KnnRegressor};
pub use lasso::Lasso;
pub use linear::LinearRegression;
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, mean_absolute_error, mean_squared_error, r2_score};
pub use mf::{MatrixFactorization, MfCell, MfParams};
pub use mlp::{MlpClassifier, MlpRegressor};
pub use model::{Classifier, Dataset, MlError, Regressor};
pub use naive_bayes::GaussianNb;
pub use preprocess::{train_test_split, Standardizer};
pub use svm::{SvmClassifier, SvmRegressor};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor};
pub use validation::{
    cross_validate_classifier, cross_validate_regressor, ConfusionMatrix, CvScore,
};
