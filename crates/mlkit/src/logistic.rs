//! Binary logistic regression trained by full-batch gradient descent.
//!
//! In the Fig. 6 reproduction this is the "LR" entry for LS-service
//! performance models: the model only needs to answer "does this
//! configuration violate QoS?" (paper §V-C), a binary question.

use crate::model::{check_binary_targets, Classifier, Dataset, MlError};
use crate::preprocess::Standardizer;

/// Logistic regression `P(y=1|x) = σ(w·x + b)`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    weights: Vec<f64>,
    intercept: f64,
    scaler: Option<Standardizer>,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl LogisticRegression {
    /// Sensible defaults for small tabular problems.
    pub fn new() -> Self {
        Self {
            learning_rate: 0.5,
            epochs: 500,
            l2: 1e-4,
            weights: Vec::new(),
            intercept: 0.0,
            scaler: None,
        }
    }

    fn sigmoid(z: f64) -> f64 {
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        check_binary_targets(data)?;
        if self.learning_rate <= 0.0 || self.epochs == 0 {
            return Err(MlError::InvalidParameter(
                "learning_rate must be > 0 and epochs ≥ 1".into(),
            ));
        }
        let scaler = Standardizer::fit(data);
        let scaled = scaler.transform(data);
        let n = scaled.len() as f64;
        let d = scaled.dims();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &y) in scaled.x.iter().zip(&scaled.y) {
                let z = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
                let err = Self::sigmoid(z) - y;
                for (g, xi) in gw.iter_mut().zip(row) {
                    *g += err * xi;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= self.learning_rate * (g / n + self.l2 * *wi);
            }
            b -= self.learning_rate * gb / n;
        }
        if w.iter().any(|v| !v.is_finite()) || !b.is_finite() {
            return Err(MlError::Numerical("diverged: non-finite weights".into()));
        }
        self.weights = w;
        self.intercept = b;
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let xs = scaler.transformed(x);
        let z = self.intercept
            + self
                .weights
                .iter()
                .zip(&xs)
                .map(|(w, v)| w * v)
                .sum::<f64>();
        Self::sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::{Rng, SeedableRng};

    fn separable(seed: u64, n: usize) -> Dataset {
        // Positive class iff x0 + x1 > 10.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] + r[1] > 10.0 { 1.0 } else { 0.0 })
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn learns_separable_boundary() {
        let data = separable(11, 300);
        let mut m = LogisticRegression::new();
        m.fit(&data).unwrap();
        let pred: Vec<bool> = data.x.iter().map(|r| m.predict_label(r)).collect();
        let truth: Vec<bool> = data.y.iter().map(|&v| v == 1.0).collect();
        assert!(accuracy(&truth, &pred) > 0.95);
    }

    #[test]
    fn scores_are_probabilities() {
        let data = separable(12, 100);
        let mut m = LogisticRegression::new();
        m.fit(&data).unwrap();
        for row in &data.x {
            let s = m.predict_score(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn confident_on_extreme_points() {
        let data = separable(13, 300);
        let mut m = LogisticRegression::new();
        m.fit(&data).unwrap();
        assert!(m.predict_score(&[9.5, 9.5]) > 0.9);
        assert!(m.predict_score(&[0.5, 0.5]) < 0.1);
    }

    #[test]
    fn rejects_non_binary_targets() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![0.0, 2.0]).unwrap();
        let mut m = LogisticRegression::new();
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn rejects_bad_hyperparams() {
        let data = separable(14, 20);
        let mut m = LogisticRegression::new();
        m.learning_rate = 0.0;
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(LogisticRegression::sigmoid(1000.0) <= 1.0);
        assert!(LogisticRegression::sigmoid(-1000.0) >= 0.0);
        assert!((LogisticRegression::sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
