//! Common model traits and the dataset container shared by every learner.

use std::fmt;

/// Errors produced while fitting or evaluating models.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The training set was empty or features/targets had mismatched lengths.
    InvalidDataset(String),
    /// A hyper-parameter was out of its valid range.
    InvalidParameter(String),
    /// Numerical failure (singular system, divergence, NaN loss).
    Numerical(String),
    /// Predict was called before fit.
    NotFitted,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidDataset(m) => write!(f, "invalid dataset: {m}"),
            MlError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            MlError::Numerical(m) => write!(f, "numerical error: {m}"),
            MlError::NotFitted => write!(f, "model is not fitted"),
        }
    }
}

impl std::error::Error for MlError {}

/// A dense supervised-learning dataset: row-major features plus one target
/// per row. Targets are `f64` for regression and `0.0 / 1.0` labels for
/// binary classification (the LS-service QoS model only needs to answer
/// "violated or not", paper §V-C).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Row-major feature matrix; every row must have the same length.
    pub x: Vec<Vec<f64>>,
    /// One target per feature row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset, validating shape invariants.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self, MlError> {
        if x.len() != y.len() {
            return Err(MlError::InvalidDataset(format!(
                "{} feature rows but {} targets",
                x.len(),
                y.len()
            )));
        }
        if x.is_empty() {
            return Err(MlError::InvalidDataset("empty dataset".into()));
        }
        let d = x[0].len();
        if d == 0 {
            return Err(MlError::InvalidDataset("zero-width feature rows".into()));
        }
        if let Some(bad) = x.iter().find(|r| r.len() != d) {
            return Err(MlError::InvalidDataset(format!(
                "ragged feature rows: expected {d}, found {}",
                bad.len()
            )));
        }
        if x.iter().flatten().chain(y.iter()).any(|v| !v.is_finite()) {
            return Err(MlError::InvalidDataset("non-finite value".into()));
        }
        Ok(Self { x, y })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Returns a new dataset containing only the listed feature columns.
    /// Used after Lasso feature selection to retrain on selected features.
    pub fn select_features(&self, cols: &[usize]) -> Result<Self, MlError> {
        let d = self.dims();
        if let Some(&c) = cols.iter().find(|&&c| c >= d) {
            return Err(MlError::InvalidParameter(format!(
                "feature column {c} out of range (dims = {d})"
            )));
        }
        let x = self
            .x
            .iter()
            .map(|row| cols.iter().map(|&c| row[c]).collect())
            .collect();
        Ok(Self {
            x,
            y: self.y.clone(),
        })
    }
}

/// A regression model: predicts a real value from a feature vector.
pub trait Regressor {
    /// Fits the model to the dataset, replacing any previous fit.
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError>;
    /// Predicts the target for one feature row.
    fn predict(&self, x: &[f64]) -> f64;

    /// Convenience batch prediction.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict(r)).collect()
    }
}

/// A binary classifier: predicts a probability-like score and a hard label.
pub trait Classifier {
    /// Fits the model to the dataset (targets must be 0.0 or 1.0).
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError>;
    /// Returns a score in `[0, 1]`; ≥ 0.5 means the positive class.
    fn predict_score(&self, x: &[f64]) -> f64;

    /// Hard 0/1 prediction.
    fn predict_label(&self, x: &[f64]) -> bool {
        self.predict_score(x) >= 0.5
    }
}

/// Validates that classification targets are 0/1.
pub(crate) fn check_binary_targets(data: &Dataset) -> Result<(), MlError> {
    if data.y.iter().any(|&v| v != 0.0 && v != 1.0) {
        return Err(MlError::InvalidDataset(
            "classification targets must be 0.0 or 1.0".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_rejects_mismatched_lengths() {
        let err = Dataset::new(vec![vec![1.0]], vec![]).unwrap_err();
        assert!(matches!(err, MlError::InvalidDataset(_)));
    }

    #[test]
    fn dataset_rejects_empty() {
        assert!(Dataset::new(vec![], vec![]).is_err());
    }

    #[test]
    fn dataset_rejects_ragged_rows() {
        let err = Dataset::new(vec![vec![1.0, 2.0], vec![3.0]], vec![0.0, 1.0]).unwrap_err();
        assert!(matches!(err, MlError::InvalidDataset(_)));
    }

    #[test]
    fn dataset_rejects_nan() {
        let err = Dataset::new(vec![vec![f64::NAN]], vec![0.0]).unwrap_err();
        assert!(matches!(err, MlError::InvalidDataset(_)));
    }

    #[test]
    fn select_features_projects_columns() {
        let d = Dataset::new(
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            vec![0.0, 1.0],
        )
        .unwrap();
        let p = d.select_features(&[2, 0]).unwrap();
        assert_eq!(p.x, vec![vec![3.0, 1.0], vec![6.0, 4.0]]);
        assert_eq!(p.y, d.y);
    }

    #[test]
    fn select_features_rejects_out_of_range() {
        let d = Dataset::new(vec![vec![1.0]], vec![0.0]).unwrap();
        assert!(d.select_features(&[1]).is_err());
    }

    #[test]
    fn binary_target_check() {
        let ok = Dataset::new(vec![vec![1.0], vec![2.0]], vec![0.0, 1.0]).unwrap();
        assert!(check_binary_targets(&ok).is_ok());
        let bad = Dataset::new(vec![vec![1.0]], vec![0.5]).unwrap();
        assert!(check_binary_targets(&bad).is_err());
    }
}
