//! Gaussian naive Bayes binary classification.
//!
//! An extension family beyond the paper's Fig. 6 lineup: per-class
//! feature Gaussians with a shared prior, closed-form training (one pass,
//! no hyper-parameters), O(d) prediction. On Sturgeon's QoS boundary its
//! independence assumption is clearly violated (cores and frequency trade
//! off), so it mainly serves as the fast-and-wrong baseline the
//! model-selection tests compare the real families against.

use crate::model::{check_binary_targets, Classifier, Dataset, MlError};

/// Per-class Gaussian parameters.
#[derive(Debug, Clone, Default)]
struct ClassStats {
    prior_ln: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

impl ClassStats {
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        let mut ll = self.prior_ln;
        for ((&xi, &m), &v) in x.iter().zip(&self.means).zip(&self.vars) {
            let diff = xi - m;
            ll += -0.5 * (v * std::f64::consts::TAU).ln() - diff * diff / (2.0 * v);
        }
        ll
    }
}

/// Gaussian naive Bayes with variance smoothing.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Added to every variance to guard degenerate (constant) features,
    /// relative to the largest feature variance.
    pub var_smoothing: f64,
    negative: ClassStats,
    positive: ClassStats,
    fitted: bool,
}

impl Default for GaussianNb {
    fn default() -> Self {
        Self {
            var_smoothing: 1e-9,
            negative: ClassStats::default(),
            positive: ClassStats::default(),
            fitted: false,
        }
    }
}

fn class_stats(rows: &[&Vec<f64>], d: usize, prior: f64, floor: f64) -> ClassStats {
    let n = rows.len().max(1) as f64;
    let mut means = vec![0.0; d];
    for r in rows {
        for (m, v) in means.iter_mut().zip(r.iter()) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0; d];
    for r in rows {
        for ((s, v), m) in vars.iter_mut().zip(r.iter()).zip(&means) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut vars {
        *s = (*s / n) + floor;
    }
    ClassStats {
        prior_ln: prior.max(f64::MIN_POSITIVE).ln(),
        means,
        vars,
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        check_binary_targets(data)?;
        let d = data.dims();
        let pos: Vec<&Vec<f64>> = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(_, &y)| y == 1.0)
            .map(|(r, _)| r)
            .collect();
        let neg: Vec<&Vec<f64>> = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(_, &y)| y == 0.0)
            .map(|(r, _)| r)
            .collect();
        if pos.is_empty() || neg.is_empty() {
            return Err(MlError::InvalidDataset(
                "both classes must be present".into(),
            ));
        }
        // Smoothing floor proportional to the largest overall variance.
        let n = data.len() as f64;
        let max_var = (0..d)
            .map(|j| {
                let mean = data.x.iter().map(|r| r[j]).sum::<f64>() / n;
                data.x.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n
            })
            .fold(0.0f64, f64::max);
        let floor = (self.var_smoothing * max_var).max(1e-12);
        let p_pos = pos.len() as f64 / n;
        self.positive = class_stats(&pos, d, p_pos, floor);
        self.negative = class_stats(&neg, d, 1.0 - p_pos, floor);
        self.fitted = true;
        Ok(())
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        assert!(self.fitted, "predict before fit");
        let lp = self.positive.log_likelihood(x);
        let ln = self.negative.log_likelihood(x);
        // Softmax over the two joint log-likelihoods, stabilized.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::{Rng, SeedableRng};

    fn two_blobs(seed: u64, n: usize, sep: f64) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2 == 0;
            let center = if label { sep } else { -sep };
            x.push(vec![
                center + rng.gen_range(-1.0..1.0),
                center + rng.gen_range(-1.0..1.0),
            ]);
            y.push(if label { 1.0 } else { 0.0 });
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn separates_gaussian_blobs() {
        let data = two_blobs(1, 400, 2.0);
        let mut nb = GaussianNb::default();
        nb.fit(&data).unwrap();
        let pred: Vec<bool> = data.x.iter().map(|r| nb.predict_label(r)).collect();
        let truth: Vec<bool> = data.y.iter().map(|&v| v == 1.0).collect();
        assert!(accuracy(&truth, &pred) > 0.97);
    }

    #[test]
    fn scores_are_probabilities_and_calibrated_at_midpoint() {
        // The midpoint log-odds are very sensitive to the ratio of the two
        // fitted variances, so a large sample keeps the estimates tight
        // enough for the 0.1 calibration tolerance.
        let data = two_blobs(2, 40_000, 2.0);
        let mut nb = GaussianNb::default();
        nb.fit(&data).unwrap();
        for v in [-4.0, -1.0, 0.0, 1.0, 4.0] {
            let s = nb.predict_score(&[v, v]);
            assert!((0.0..=1.0).contains(&s));
        }
        // Exactly between symmetric blobs: ~0.5.
        let mid = nb.predict_score(&[0.0, 0.0]);
        assert!((mid - 0.5).abs() < 0.1, "midpoint score {mid}");
    }

    #[test]
    fn handles_constant_features_via_smoothing() {
        // Feature 1 is constant: without smoothing its variance is 0.
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 5.0])
            .collect();
        let y: Vec<f64> = (0..40).map(|i| (i % 2 == 0) as u8 as f64).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut nb = GaussianNb::default();
        nb.fit(&data).unwrap();
        assert!(nb.predict_label(&[1.0, 5.0]));
        assert!(!nb.predict_label(&[-1.0, 5.0]));
        assert!(nb.predict_score(&[1.0, 5.0]).is_finite());
    }

    #[test]
    fn rejects_single_class_datasets() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]).unwrap();
        let mut nb = GaussianNb::default();
        assert!(nb.fit(&data).is_err());
    }

    #[test]
    fn imbalanced_priors_shift_the_boundary() {
        // 90% negatives: an ambiguous point should lean negative.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for i in 0..200 {
            let label = i % 10 == 0;
            let center = if label { 1.0 } else { -1.0 };
            x.push(vec![center + rng.gen_range(-1.5..1.5)]);
            y.push(label as u8 as f64);
        }
        let data = Dataset::new(x, y).unwrap();
        let mut nb = GaussianNb::default();
        nb.fit(&data).unwrap();
        assert!(nb.predict_score(&[0.0]) < 0.5);
    }
}
