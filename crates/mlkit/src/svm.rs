//! Linear support-vector models trained by averaged stochastic
//! (sub)gradient descent: hinge loss for classification (Pegasos-style)
//! and ε-insensitive loss for regression.
//!
//! These are the "SV" bars of Figs. 6 and 7. The paper does not find SV
//! models best for any Sturgeon model, but evaluates them as candidates;
//! we do the same.

use crate::model::{check_binary_targets, Classifier, Dataset, MlError, Regressor};
use crate::preprocess::Standardizer;
use rand::{Rng, SeedableRng};

/// Shared SGD hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmParams {
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Epochs over the training set.
    pub epochs: usize,
    /// ε for the regression tube (ignored by the classifier).
    pub epsilon: f64,
    /// RNG seed for sample order.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 60,
            epsilon: 0.05,
            seed: 0x53_56_4d,
        }
    }
}

/// Common linear model state.
#[derive(Debug, Clone)]
struct LinearSvmCore {
    params: SvmParams,
    weights: Vec<f64>,
    intercept: f64,
    x_scaler: Option<Standardizer>,
    y_mean: f64,
    y_std: f64,
}

impl LinearSvmCore {
    fn new(params: SvmParams) -> Self {
        Self {
            params,
            weights: Vec::new(),
            intercept: 0.0,
            x_scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.params.lambda <= 0.0 || self.params.epochs == 0 {
            return Err(MlError::InvalidParameter(
                "lambda > 0 and epochs ≥ 1 required".into(),
            ));
        }
        Ok(())
    }

    fn decision(&self, x: &[f64]) -> f64 {
        let scaler = self.x_scaler.as_ref().expect("predict before fit");
        let xs = scaler.transformed(x);
        self.intercept
            + self
                .weights
                .iter()
                .zip(&xs)
                .map(|(w, v)| w * v)
                .sum::<f64>()
    }
}

/// Linear SVM classifier (Pegasos). Targets 0/1 are mapped to −1/+1
/// internally; `predict_score` squashes the margin through a sigmoid.
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    core: LinearSvmCore,
}

impl Default for SvmClassifier {
    fn default() -> Self {
        Self::new(SvmParams::default())
    }
}

impl SvmClassifier {
    /// A classifier with the given hyper-parameters.
    pub fn new(params: SvmParams) -> Self {
        Self {
            core: LinearSvmCore::new(params),
        }
    }

    /// Signed distance to the separating hyperplane (in scaled space).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.core.decision(x)
    }
}

impl Classifier for SvmClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.core.validate()?;
        check_binary_targets(data)?;
        let p = self.core.params;
        let scaler = Standardizer::fit(data);
        let xs: Vec<Vec<f64>> = data.x.iter().map(|r| scaler.transformed(r)).collect();
        let ys: Vec<f64> = data
            .y
            .iter()
            .map(|&y| if y == 1.0 { 1.0 } else { -1.0 })
            .collect();
        let d = data.dims();
        let n = xs.len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        // Averaged weights smooth SGD noise (Polyak averaging).
        let mut w_avg = vec![0.0; d];
        let mut b_avg = 0.0;
        let total = (p.epochs * n) as u64;
        let burn_in = total / 2; // average the second half only
        let mut averaged: u64 = 0;
        let mut t: u64 = 0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(p.seed);
        for _ in 0..p.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                // Bottou schedule: bounded at t = 0, asymptotically 1/(λt).
                let eta = 0.5 / (1.0 + 0.5 * p.lambda * t as f64);
                let margin =
                    ys[i] * (b + w.iter().zip(&xs[i]).map(|(wi, xi)| wi * xi).sum::<f64>());
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * p.lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(&xs[i]) {
                        *wi += eta * ys[i] * xi;
                    }
                    b += eta * ys[i];
                }
                if t > burn_in {
                    averaged += 1;
                    for (a, wi) in w_avg.iter_mut().zip(&w) {
                        *a += wi;
                    }
                    b_avg += b;
                }
            }
        }
        let tf = averaged.max(1) as f64;
        self.core.weights = w_avg.into_iter().map(|v| v / tf).collect();
        self.core.intercept = b_avg / tf;
        self.core.x_scaler = Some(scaler);
        Ok(())
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        let m = self.core.decision(x);
        1.0 / (1.0 + (-m).exp())
    }
}

/// Linear SVR with ε-insensitive loss, trained by SGD on standardized
/// features and targets.
#[derive(Debug, Clone)]
pub struct SvmRegressor {
    core: LinearSvmCore,
}

impl Default for SvmRegressor {
    fn default() -> Self {
        Self::new(SvmParams::default())
    }
}

impl SvmRegressor {
    /// A regressor with the given hyper-parameters.
    pub fn new(params: SvmParams) -> Self {
        Self {
            core: LinearSvmCore::new(params),
        }
    }
}

impl Regressor for SvmRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.core.validate()?;
        let p = self.core.params;
        let scaler = Standardizer::fit(data);
        let xs: Vec<Vec<f64>> = data.x.iter().map(|r| scaler.transformed(r)).collect();
        let n = data.len() as f64;
        let y_mean = data.y.iter().sum::<f64>() / n;
        let y_std = (data.y.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n)
            .sqrt()
            .max(1e-9);
        let ys: Vec<f64> = data.y.iter().map(|y| (y - y_mean) / y_std).collect();
        let d = data.dims();
        let m = xs.len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut w_avg = vec![0.0; d];
        let mut b_avg = 0.0;
        let total = (p.epochs * m) as u64;
        let burn_in = total / 2;
        let mut averaged: u64 = 0;
        let mut t: u64 = 0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(p.seed);
        for _ in 0..p.epochs {
            for _ in 0..m {
                t += 1;
                let i = rng.gen_range(0..m);
                // Bottou schedule, as in the classifier.
                let eta = 0.5 / (1.0 + 0.5 * p.lambda * t as f64);
                let pred = b + w.iter().zip(&xs[i]).map(|(wi, xi)| wi * xi).sum::<f64>();
                let err = pred - ys[i];
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * p.lambda;
                }
                // Subgradient of the ε-insensitive loss: ±1 outside the tube.
                if err > p.epsilon {
                    for (wi, xi) in w.iter_mut().zip(&xs[i]) {
                        *wi -= eta * xi;
                    }
                    b -= eta;
                } else if err < -p.epsilon {
                    for (wi, xi) in w.iter_mut().zip(&xs[i]) {
                        *wi += eta * xi;
                    }
                    b += eta;
                }
                if t > burn_in {
                    averaged += 1;
                    for (a, wi) in w_avg.iter_mut().zip(&w) {
                        *a += wi;
                    }
                    b_avg += b;
                }
            }
        }
        let tf = averaged.max(1) as f64;
        self.core.weights = w_avg.into_iter().map(|v| v / tf).collect();
        self.core.intercept = b_avg / tf;
        self.core.x_scaler = Some(scaler);
        self.core.y_mean = y_mean;
        self.core.y_std = y_std;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.core.decision(x) * self.core.y_std + self.core.y_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2_score};
    use rand::{Rng, SeedableRng};

    #[test]
    fn classifier_separates_linear_boundary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let x: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| {
                if 2.0 * r[0] - r[1] + 1.0 > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = SvmClassifier::default();
        m.fit(&data).unwrap();
        let pred: Vec<bool> = data.x.iter().map(|r| m.predict_label(r)).collect();
        let truth: Vec<bool> = data.y.iter().map(|&v| v == 1.0).collect();
        assert!(accuracy(&truth, &pred) > 0.95);
    }

    #[test]
    fn regressor_fits_linear_function() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let x: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(0.0..4.0), rng.gen_range(0.0..4.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + r[1] - 2.0).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = SvmRegressor::default();
        m.fit(&data).unwrap();
        let pred = m.predict_batch(&data.x);
        assert!(
            r2_score(&data.y, &pred) > 0.95,
            "R² = {}",
            r2_score(&data.y, &pred)
        );
    }

    #[test]
    fn margin_sign_matches_label() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 - 50.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = SvmClassifier::default();
        m.fit(&data).unwrap();
        assert!(m.margin(&[30.0]) > 0.0);
        assert!(m.margin(&[-30.0]) < 0.0);
    }

    #[test]
    fn rejects_bad_params() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]).unwrap();
        let mut m = SvmClassifier::new(SvmParams {
            lambda: 0.0,
            ..SvmParams::default()
        });
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn classifier_rejects_non_binary() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 0.7]).unwrap();
        let mut m = SvmClassifier::default();
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0]).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut a = SvmRegressor::default();
        let mut b = SvmRegressor::default();
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[10.0]), b.predict(&[10.0]));
    }
}
