//! CART decision trees for regression (variance reduction) and binary
//! classification (Gini impurity).
//!
//! The paper finds "DT Classification is the most suitable for the
//! performance model of LS services" (§V-C): the QoS-violation boundary in
//! (QPS, cores, frequency, ways)-space is a step-like surface that
//! axis-aligned splits capture very well.

use crate::model::{check_binary_targets, Classifier, Dataset, MlError, Regressor};

/// A tree node: either an internal split or a leaf carrying a value.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,  // rows with x[feature] <= threshold
        right: Box<Node>, // rows with x[feature] > threshold
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut node = self;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    /// Minimize within-node target variance (regression).
    Variance,
    /// Minimize Gini impurity (binary classification).
    Gini,
}

/// Hyper-parameters shared by both tree flavours.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum rows in each child of an accepted split.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
        }
    }
}

/// Impurity of a multiset of targets under the given criterion, times the
/// number of rows (so parent − children is the weighted gain).
fn impurity(sum: f64, sum_sq: f64, n: f64, criterion: Criterion) -> f64 {
    match criterion {
        // n * Var = Σy² − (Σy)²/n
        Criterion::Variance => sum_sq - sum * sum / n,
        // For 0/1 targets: n * Gini = n * 2p(1−p), with p = sum/n.
        Criterion::Gini => {
            let p = sum / n;
            2.0 * n * p * (1.0 - p)
        }
    }
}

/// Builds a tree on the rows referenced by `idx` (indices into the data).
fn build(
    data: &Dataset,
    idx: &mut [usize],
    depth: usize,
    params: &TreeParams,
    criterion: Criterion,
) -> Node {
    let n = idx.len();
    let sum: f64 = idx.iter().map(|&i| data.y[i]).sum();
    let mean = sum / n as f64;
    let sum_sq: f64 = idx.iter().map(|&i| data.y[i] * data.y[i]).sum();
    let parent_impurity = impurity(sum, sum_sq, n as f64, criterion);

    let make_leaf = || Node::Leaf { value: mean };
    if depth >= params.max_depth || n < params.min_samples_split || parent_impurity <= 1e-12 {
        return make_leaf();
    }

    // Find the best (feature, threshold) by sorting indices per feature
    // and scanning split points with running sums.
    let d = data.dims();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    let mut sorted = idx.to_vec();
    for f in 0..d {
        sorted.sort_unstable_by(|&a, &b| data.x[a][f].total_cmp(&data.x[b][f]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for k in 0..n - 1 {
            let i = sorted[k];
            left_sum += data.y[i];
            left_sq += data.y[i] * data.y[i];
            let nl = k + 1;
            let nr = n - nl;
            // Can't split between equal feature values.
            if data.x[sorted[k]][f] == data.x[sorted[k + 1]][f] {
                continue;
            }
            if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                continue;
            }
            let right_sum = sum - left_sum;
            let right_sq = sum_sq - left_sq;
            let child_impurity = impurity(left_sum, left_sq, nl as f64, criterion)
                + impurity(right_sum, right_sq, nr as f64, criterion);
            let gain = parent_impurity - child_impurity;
            if gain > best.map_or(1e-12, |(_, _, g)| g) {
                let threshold = 0.5 * (data.x[sorted[k]][f] + data.x[sorted[k + 1]][f]);
                best = Some((f, threshold, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return make_leaf();
    };

    // Partition indices in place around the chosen split.
    let mid = itertools_partition(idx, |&i| data.x[i][feature] <= threshold);
    let (left_idx, right_idx) = idx.split_at_mut(mid);
    debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(data, left_idx, depth + 1, params, criterion)),
        right: Box::new(build(data, right_idx, depth + 1, params, criterion)),
    }
}

/// Stable-order in-place partition; returns the index of the first element
/// for which the predicate is false.
fn itertools_partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(slice.len());
    let mut mid = 0;
    for &v in slice.iter() {
        if pred(&v) {
            buf.insert(mid, v);
            mid += 1;
        } else {
            buf.push(v);
        }
    }
    slice.copy_from_slice(&buf);
    mid
}

/// CART regression tree.
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeRegressor {
    /// Structural hyper-parameters.
    pub params: TreeParams,
    root: Option<Node>,
}

impl DecisionTreeRegressor {
    /// A regressor with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        Self { params, root: None }
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        validate_params(&self.params)?;
        let mut idx: Vec<usize> = (0..data.len()).collect();
        self.root = Some(build(data, &mut idx, 0, &self.params, Criterion::Variance));
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.root.as_ref().expect("predict before fit").predict(x)
    }
}

/// CART binary-classification tree; leaf values are positive-class rates.
#[derive(Debug, Clone, Default)]
pub struct DecisionTreeClassifier {
    /// Structural hyper-parameters.
    pub params: TreeParams,
    root: Option<Node>,
}

impl DecisionTreeClassifier {
    /// A classifier with the given parameters.
    pub fn new(params: TreeParams) -> Self {
        Self { params, root: None }
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.as_ref().map_or(0, Node::depth)
    }
}

impl Classifier for DecisionTreeClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        validate_params(&self.params)?;
        check_binary_targets(data)?;
        let mut idx: Vec<usize> = (0..data.len()).collect();
        self.root = Some(build(data, &mut idx, 0, &self.params, Criterion::Gini));
        Ok(())
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        self.root.as_ref().expect("predict before fit").predict(x)
    }
}

fn validate_params(p: &TreeParams) -> Result<(), MlError> {
    if p.min_samples_leaf == 0 || p.min_samples_split < 2 {
        return Err(MlError::InvalidParameter(
            "min_samples_leaf ≥ 1 and min_samples_split ≥ 2 required".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn regressor_fits_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&data).unwrap();
        assert_eq!(t.predict(&[3.0]), 1.0);
        assert_eq!(t.predict(&[33.0]), 5.0);
    }

    #[test]
    fn regressor_approximates_smooth_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin()).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&data).unwrap();
        let pred = t.predict_batch(&data.x);
        assert!(r2_score(&data.y, &pred) > 0.95);
    }

    #[test]
    fn classifier_learns_axis_aligned_box() {
        // Positive iff both features in [3, 7].
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..11 {
            for j in 0..11 {
                x.push(vec![i as f64, j as f64]);
                let inside = (3..=7).contains(&i) && (3..=7).contains(&j);
                y.push(if inside { 1.0 } else { 0.0 });
            }
        }
        let data = Dataset::new(x, y).unwrap();
        let mut t = DecisionTreeClassifier::default();
        t.fit(&data).unwrap();
        assert!(t.predict_label(&[5.0, 5.0]));
        assert!(!t.predict_label(&[1.0, 5.0]));
        assert!(!t.predict_label(&[5.0, 9.0]));
    }

    #[test]
    fn max_depth_limits_tree() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut t = DecisionTreeRegressor::new(TreeParams {
            max_depth: 2,
            ..TreeParams::default()
        });
        t.fit(&data).unwrap();
        assert!(t.depth() <= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![4.0; 3]).unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&data).unwrap();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[77.0]), 4.0);
    }

    #[test]
    fn rejects_bad_params() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]).unwrap();
        let mut t = DecisionTreeRegressor::new(TreeParams {
            min_samples_leaf: 0,
            ..TreeParams::default()
        });
        assert!(t.fit(&data).is_err());
    }

    #[test]
    fn partition_is_stable_and_correct() {
        let mut v = [5, 1, 4, 2, 3];
        let mid = itertools_partition(&mut v, |&x| x <= 3);
        assert_eq!(mid, 3);
        assert_eq!(&v[..mid], &[1, 2, 3]);
        assert_eq!(&v[mid..], &[5, 4]);
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        // All feature values identical -> no valid split -> leaf.
        let data = Dataset::new(vec![vec![1.0]; 10], (0..10).map(|i| i as f64).collect()).unwrap();
        let mut t = DecisionTreeRegressor::default();
        t.fit(&data).unwrap();
        assert_eq!(t.depth(), 0);
        assert!((t.predict(&[1.0]) - 4.5).abs() < 1e-12);
    }
}
