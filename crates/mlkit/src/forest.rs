//! Random forests: bagged ensembles of CART trees with per-split feature
//! subsampling.
//!
//! Not one of the paper's five evaluated families — included as an
//! extension because a forest is the natural robustness upgrade over the
//! single decision tree the paper deploys: bootstrap aggregation smooths
//! the hard leaf boundaries that caused the "feasible island"
//! hallucinations documented in `sturgeon::predictor`, at a few hundred
//! microseconds of extra training time. The ablation bench compares both.

use crate::model::{check_binary_targets, Classifier, Dataset, MlError, Regressor};
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of bagged trees.
    pub trees: usize,
    /// Structural parameters of each tree.
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_fraction: f64,
    /// RNG seed for bootstrapping.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            trees: 25,
            tree: TreeParams::default(),
            sample_fraction: 0.8,
            seed: 0xF0_7E_57,
        }
    }
}

fn validate(params: &ForestParams) -> Result<(), MlError> {
    if params.trees == 0 {
        return Err(MlError::InvalidParameter("trees must be ≥ 1".into()));
    }
    if !(0.05..=1.0).contains(&params.sample_fraction) {
        return Err(MlError::InvalidParameter(
            "sample_fraction must be in [0.05, 1]".into(),
        ));
    }
    Ok(())
}

/// Draws a bootstrap sample (with replacement) of the dataset.
fn bootstrap(data: &Dataset, fraction: f64, rng: &mut StdRng) -> Dataset {
    let n = data.len();
    let m = ((n as f64 * fraction).round() as usize).max(1);
    let mut x = Vec::with_capacity(m);
    let mut y = Vec::with_capacity(m);
    for _ in 0..m {
        let i = rng.gen_range(0..n);
        x.push(data.x[i].clone());
        y.push(data.y[i]);
    }
    Dataset { x, y }
}

/// Bagged regression forest (mean of tree predictions).
#[derive(Debug, Clone, Default)]
pub struct RandomForestRegressor {
    /// Hyper-parameters.
    pub params: ForestParams,
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// A forest with the given parameters.
    pub fn new(params: ForestParams) -> Self {
        Self {
            params,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        validate(&self.params)?;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.trees.clear();
        for _ in 0..self.params.trees {
            let sample = bootstrap(data, self.params.sample_fraction, &mut rng);
            let mut tree = DecisionTreeRegressor::new(self.params.tree);
            tree.fit(&sample)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }
}

/// Bagged classification forest (soft vote: mean leaf positive-rate).
#[derive(Debug, Clone, Default)]
pub struct RandomForestClassifier {
    /// Hyper-parameters.
    pub params: ForestParams,
    trees: Vec<DecisionTreeClassifier>,
}

impl RandomForestClassifier {
    /// A forest with the given parameters.
    pub fn new(params: ForestParams) -> Self {
        Self {
            params,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        validate(&self.params)?;
        check_binary_targets(data)?;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.trees.clear();
        for _ in 0..self.params.trees {
            let sample = bootstrap(data, self.params.sample_fraction, &mut rng);
            let mut tree = DecisionTreeClassifier::new(self.params.tree);
            tree.fit(&sample)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.predict_score(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2_score};
    use rand::Rng;

    fn noisy_quadratic(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| r[0] * r[0] + r[1] + rng.gen_range(-0.2..0.2))
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn regressor_fits_nonlinear_data() {
        let data = noisy_quadratic(1, 400);
        let mut f = RandomForestRegressor::default();
        f.fit(&data).unwrap();
        let pred = f.predict_batch(&data.x);
        assert!(r2_score(&data.y, &pred) > 0.9);
        assert_eq!(f.tree_count(), 25);
    }

    #[test]
    fn forest_smooths_single_tree_variance() {
        // Out-of-sample error of the forest should not exceed a single
        // deep tree's on noisy data.
        let train = noisy_quadratic(2, 300);
        let test = noisy_quadratic(3, 200);
        let mut forest = RandomForestRegressor::default();
        forest.fit(&train).unwrap();
        let mut tree = DecisionTreeRegressor::default();
        tree.fit(&train).unwrap();
        let forest_r2 = r2_score(&test.y, &forest.predict_batch(&test.x));
        let tree_r2 = r2_score(&test.y, &tree.predict_batch(&test.x));
        assert!(
            forest_r2 >= tree_r2 - 0.02,
            "forest {forest_r2} vs tree {tree_r2}"
        );
    }

    #[test]
    fn classifier_learns_boundary() {
        let mut rng = StdRng::seed_from_u64(4);
        let x: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] * r[1] > 25.0 { 1.0 } else { 0.0 })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let mut f = RandomForestClassifier::default();
        f.fit(&data).unwrap();
        let pred: Vec<bool> = data.x.iter().map(|r| f.predict_label(r)).collect();
        let truth: Vec<bool> = data.y.iter().map(|&v| v == 1.0).collect();
        assert!(accuracy(&truth, &pred) > 0.93);
    }

    #[test]
    fn scores_are_probabilities() {
        let data = Dataset::new(
            (0..50).map(|i| vec![i as f64]).collect(),
            (0..50).map(|i| if i > 25 { 1.0 } else { 0.0 }).collect(),
        )
        .unwrap();
        let mut f = RandomForestClassifier::default();
        f.fit(&data).unwrap();
        for v in [0.0, 20.0, 30.0, 49.0] {
            let s = f.predict_score(&[v]);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn rejects_bad_params() {
        let data = noisy_quadratic(5, 20);
        let mut f = RandomForestRegressor::new(ForestParams {
            trees: 0,
            ..ForestParams::default()
        });
        assert!(f.fit(&data).is_err());
        let mut f = RandomForestRegressor::new(ForestParams {
            sample_fraction: 0.0,
            ..ForestParams::default()
        });
        assert!(f.fit(&data).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = noisy_quadratic(6, 200);
        let mut a = RandomForestRegressor::default();
        let mut b = RandomForestRegressor::default();
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[1.5, -0.5]), b.predict(&[1.5, -0.5]));
    }

    #[test]
    fn classifier_rejects_non_binary() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 2.0]).unwrap();
        let mut f = RandomForestClassifier::default();
        assert!(f.fit(&data).is_err());
    }
}
