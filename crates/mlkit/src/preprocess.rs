//! Dataset preprocessing: feature standardization and deterministic
//! train/test splitting.

use crate::model::{Dataset, MlError};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Z-score standardizer: `x' = (x − mean) / std` per feature column.
///
/// Distance-based (KNN), margin-based (SVM) and gradient-based (MLP,
/// logistic) learners all need comparable feature scales; Sturgeon's raw
/// features span 1.2–2.2 (GHz) next to 60 000 (QPS), so standardization is
/// load-bearing, not cosmetic.
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Learns per-column mean and standard deviation.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.dims();
        let n = data.len() as f64;
        let mut means = vec![0.0; d];
        for row in &data.x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for row in &data.x {
            for ((s, v), m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            // Constant columns carry no information; map them to 0 rather
            // than dividing by zero.
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Transforms one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Returns a standardized copy of the row.
    pub fn transformed(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.transform_row(&mut out);
        out
    }

    /// Standardizes a whole dataset (targets untouched).
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            x: data.x.iter().map(|r| self.transformed(r)).collect(),
            y: data.y.clone(),
        }
    }

    /// Number of feature columns the standardizer was fitted on.
    pub fn dims(&self) -> usize {
        self.means.len()
    }
}

/// Deterministically shuffles and splits a dataset. `test_fraction` must be
/// in `(0, 1)` and both sides of the split must be non-empty.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), MlError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(MlError::InvalidParameter(format!(
            "test_fraction {test_fraction} not in (0, 1)"
        )));
    }
    let n = data.len();
    let n_test = ((n as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test == n {
        return Err(MlError::InvalidDataset(format!(
            "split of {n} rows at {test_fraction} leaves an empty side"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let (test_idx, train_idx) = idx.split_at(n_test);
    let take = |ids: &[usize]| Dataset {
        x: ids.iter().map(|&i| data.x[i].clone()).collect(),
        y: ids.iter().map(|&i| data.y[i]).collect(),
    };
    Ok((take(train_idx), take(test_idx)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect(),
            (0..10).map(|i| i as f64).collect(),
        )
        .unwrap()
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let d = toy();
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        for col in 0..2 {
            let vals: Vec<f64> = t.x.iter().map(|r| r[col]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn standardizer_constant_column_is_safe() {
        let d = Dataset::new(vec![vec![3.0], vec![3.0]], vec![0.0, 1.0]).unwrap();
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        assert!(t.x.iter().all(|r| r[0].is_finite()));
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = toy();
        let (train, test) = train_test_split(&d, 0.3, 42).unwrap();
        assert_eq!(test.len(), 3);
        assert_eq!(train.len(), 7);
        // Every original row appears exactly once across the split (rows
        // here are unique, so multiset equality is set equality).
        let mut all: Vec<f64> = train.y.iter().chain(test.y.iter()).copied().collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy();
        let (a, _) = train_test_split(&d, 0.3, 7).unwrap();
        let (b, _) = train_test_split(&d, 0.3, 7).unwrap();
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let d = toy();
        assert!(train_test_split(&d, 0.0, 1).is_err());
        assert!(train_test_split(&d, 1.0, 1).is_err());
        assert!(train_test_split(&d, 0.999, 1).is_err());
    }
}
