//! Multi-layer perceptron (one hidden layer, tanh activation) trained with
//! mini-batch SGD and momentum.
//!
//! The paper finds MLP regression competitive for BE-application
//! performance models (Fig. 6). The throughput surface over
//! (input size, cores, frequency, ways) is smooth but non-linear
//! (Amdahl saturation × frequency scaling × cache miss curves), which a
//! small tanh network captures well.

use crate::model::{check_binary_targets, Classifier, Dataset, MlError, Regressor};
use crate::preprocess::Standardizer;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for the MLP.
#[derive(Debug, Clone, Copy)]
pub struct MlpParams {
    /// Hidden layer width.
    pub hidden: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Momentum coefficient.
    pub momentum: f64,
    /// RNG seed for weight initialization and shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        Self {
            hidden: 24,
            learning_rate: 0.02,
            epochs: 300,
            batch: 16,
            momentum: 0.9,
            seed: 0x5742_4d4c,
        }
    }
}

/// One-hidden-layer network. `w1` is `hidden × d`, `w2` is `hidden`.
#[derive(Debug, Clone)]
struct Network {
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
}

impl Network {
    fn init(d: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        // Xavier-style initialization keeps tanh units in their active range.
        let scale = (1.0 / d as f64).sqrt();
        Self {
            w1: (0..hidden)
                .map(|_| (0..d).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden).map(|_| rng.gen_range(-scale..scale)).collect(),
            b2: 0.0,
        }
    }

    /// Forward pass; returns (hidden activations, output pre-activation).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let h: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| {
                let z = b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>();
                z.tanh()
            })
            .collect();
        let out = self.b2 + self.w2.iter().zip(&h).map(|(w, hi)| w * hi).sum::<f64>();
        (h, out)
    }
}

/// Shared training core. `link` maps network output to prediction space;
/// for regression it is identity, for classification a sigmoid.
#[derive(Debug, Clone)]
struct MlpCore {
    params: MlpParams,
    net: Option<Network>,
    x_scaler: Option<Standardizer>,
    /// Regression standardizes targets too, so the learning rate is
    /// scale-free; classification leaves them as 0/1.
    y_mean: f64,
    y_std: f64,
}

impl MlpCore {
    fn new(params: MlpParams) -> Self {
        Self {
            params,
            net: None,
            x_scaler: None,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn fit(&mut self, data: &Dataset, classify: bool) -> Result<(), MlError> {
        let p = self.params;
        if p.hidden == 0 || p.epochs == 0 || p.batch == 0 || p.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter(
                "hidden, epochs, batch ≥ 1 and learning_rate > 0 required".into(),
            ));
        }
        let scaler = Standardizer::fit(data);
        let xs: Vec<Vec<f64>> = data.x.iter().map(|r| scaler.transformed(r)).collect();
        let (y_mean, y_std);
        let ys: Vec<f64> = if classify {
            y_mean = 0.0;
            y_std = 1.0;
            data.y.clone()
        } else {
            let n = data.len() as f64;
            y_mean = data.y.iter().sum::<f64>() / n;
            let var = data.y.iter().map(|y| (y - y_mean).powi(2)).sum::<f64>() / n;
            y_std = var.sqrt().max(1e-9);
            data.y.iter().map(|y| (y - y_mean) / y_std).collect()
        };

        let d = data.dims();
        let mut rng = rand::rngs::StdRng::seed_from_u64(p.seed);
        let mut net = Network::init(d, p.hidden, &mut rng);
        // Momentum buffers mirror the weight shapes.
        let mut vw1 = vec![vec![0.0; d]; p.hidden];
        let mut vb1 = vec![0.0; p.hidden];
        let mut vw2 = vec![0.0; p.hidden];
        let mut vb2 = 0.0;

        let n = xs.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..p.epochs {
            // Fisher–Yates shuffle with the fitted RNG keeps runs
            // deterministic per seed.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(p.batch) {
                let m = chunk.len() as f64;
                let mut gw1 = vec![vec![0.0; d]; p.hidden];
                let mut gb1 = vec![0.0; p.hidden];
                let mut gw2 = vec![0.0; p.hidden];
                let mut gb2 = 0.0;
                for &i in chunk {
                    let x = &xs[i];
                    let (h, z) = net.forward(x);
                    let out = if classify { sigmoid(z) } else { z };
                    // Squared loss for regression, log-loss for
                    // classification: both give delta = out − y.
                    let delta = out - ys[i];
                    gb2 += delta;
                    for j in 0..p.hidden {
                        gw2[j] += delta * h[j];
                        // Backprop into the hidden layer: dtanh = 1 − h².
                        let dh = delta * net.w2[j] * (1.0 - h[j] * h[j]);
                        gb1[j] += dh;
                        for (g, xi) in gw1[j].iter_mut().zip(x) {
                            *g += dh * xi;
                        }
                    }
                }
                let lr = p.learning_rate / m;
                let mu = p.momentum;
                for j in 0..p.hidden {
                    for k in 0..d {
                        vw1[j][k] = mu * vw1[j][k] - lr * gw1[j][k];
                        net.w1[j][k] += vw1[j][k];
                    }
                    vb1[j] = mu * vb1[j] - lr * gb1[j];
                    net.b1[j] += vb1[j];
                    vw2[j] = mu * vw2[j] - lr * gw2[j];
                    net.w2[j] += vw2[j];
                }
                vb2 = mu * vb2 - lr * gb2;
                net.b2 += vb2;
            }
        }
        if net.w2.iter().any(|v| !v.is_finite()) || !net.b2.is_finite() {
            return Err(MlError::Numerical("MLP training diverged".into()));
        }
        self.net = Some(net);
        self.x_scaler = Some(scaler);
        self.y_mean = y_mean;
        self.y_std = y_std;
        Ok(())
    }

    fn raw_output(&self, x: &[f64]) -> f64 {
        let scaler = self.x_scaler.as_ref().expect("predict before fit");
        let net = self.net.as_ref().expect("predict before fit");
        let xs = scaler.transformed(x);
        net.forward(&xs).1
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// MLP regressor.
#[derive(Debug, Clone)]
pub struct MlpRegressor {
    core: MlpCore,
}

impl Default for MlpRegressor {
    fn default() -> Self {
        Self::new(MlpParams::default())
    }
}

impl MlpRegressor {
    /// Creates a regressor with the given hyper-parameters.
    pub fn new(params: MlpParams) -> Self {
        Self {
            core: MlpCore::new(params),
        }
    }
}

impl Regressor for MlpRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.core.fit(data, false)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.core.raw_output(x) * self.core.y_std + self.core.y_mean
    }
}

/// MLP binary classifier (sigmoid output, log loss).
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    core: MlpCore,
}

impl Default for MlpClassifier {
    fn default() -> Self {
        Self::new(MlpParams::default())
    }
}

impl MlpClassifier {
    /// Creates a classifier with the given hyper-parameters.
    pub fn new(params: MlpParams) -> Self {
        Self {
            core: MlpCore::new(params),
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        check_binary_targets(data)?;
        self.core.fit(data, true)
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        sigmoid(self.core.raw_output(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2_score};
    use rand::{Rng, SeedableRng};

    #[test]
    fn regressor_learns_nonlinear_function() {
        // y = x0² − x1, a function a linear model cannot fit.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let x: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0] - r[1]).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = MlpRegressor::default();
        m.fit(&data).unwrap();
        let pred = m.predict_batch(&data.x);
        assert!(
            r2_score(&data.y, &pred) > 0.9,
            "R² = {}",
            r2_score(&data.y, &pred)
        );
    }

    #[test]
    fn classifier_learns_xor() {
        // XOR is the canonical not-linearly-separable problem.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        for _ in 0..400 {
            let a = rng.gen_range(0.0..1.0_f64);
            let b = rng.gen_range(0.0..1.0_f64);
            x.push(vec![a, b]);
            y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
        }
        let data = Dataset::new(x, y).unwrap();
        let mut m = MlpClassifier::new(MlpParams {
            epochs: 600,
            ..MlpParams::default()
        });
        m.fit(&data).unwrap();
        let pred: Vec<bool> = data.x.iter().map(|r| m.predict_label(r)).collect();
        let truth: Vec<bool> = data.y.iter().map(|&v| v == 1.0).collect();
        assert!(accuracy(&truth, &pred) > 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = Dataset::new(
            (0..50).map(|i| vec![i as f64 / 10.0]).collect(),
            (0..50).map(|i| (i as f64 / 10.0).sin()).collect(),
        )
        .unwrap();
        let mut a = MlpRegressor::default();
        let mut b = MlpRegressor::default();
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[2.5]), b.predict(&[2.5]));
    }

    #[test]
    fn rejects_bad_params() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]).unwrap();
        let mut m = MlpRegressor::new(MlpParams {
            hidden: 0,
            ..MlpParams::default()
        });
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn classifier_rejects_non_binary() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 2.0]).unwrap();
        let mut m = MlpClassifier::default();
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn scores_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let x: Vec<Vec<f64>> = (0..60).map(|_| vec![rng.gen_range(-5.0..5.0)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = MlpClassifier::default();
        m.fit(&data).unwrap();
        for v in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let s = m.predict_score(&[v]);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
