//! Ordinary least squares linear regression, solved by the normal
//! equations with a tiny ridge term for numerical stability.
//!
//! Sturgeon's feature space is 4-dimensional, so forming `XᵀX` (5×5 with
//! intercept) and solving by Gaussian elimination with partial pivoting is
//! exact and instantaneous.

use crate::model::{Dataset, MlError, Regressor};

/// Linear regression `y = w·x + b`.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// L2 regularization strength applied to weights (not the intercept).
    /// Zero gives plain OLS; the default `1e-9` only guards singularity.
    pub ridge: f64,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearRegression {
    /// OLS with a vanishing ridge term for stability.
    pub fn new() -> Self {
        Self::with_ridge(1e-9)
    }

    /// Ridge regression with the given L2 strength.
    pub fn with_ridge(ridge: f64) -> Self {
        Self {
            ridge,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Fitted coefficients (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Solves `A·x = b` in place via Gaussian elimination with partial
/// pivoting. `A` is row-major `n×n`.
// Indexed loops mirror the textbook elimination; iterator forms obscure
// the row/column structure here.
#[allow(clippy::needless_range_loop)]
pub(crate) fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, MlError> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(MlError::Numerical("singular normal equations".into()));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let inv = 1.0 / a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

impl Regressor for LinearRegression {
    #[allow(clippy::needless_range_loop)] // symmetric-matrix indexing
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        let d = data.dims();
        let aug = d + 1; // trailing column is the intercept
        let mut xtx = vec![vec![0.0; aug]; aug];
        let mut xty = vec![0.0; aug];
        for (row, &y) in data.x.iter().zip(&data.y) {
            for i in 0..aug {
                let xi = if i < d { row[i] } else { 1.0 };
                xty[i] += xi * y;
                for j in i..aug {
                    let xj = if j < d { row[j] } else { 1.0 };
                    xtx[i][j] += xi * xj;
                }
            }
        }
        // Mirror the upper triangle and add the ridge term to weight dims.
        for i in 0..aug {
            for j in 0..i {
                let v = xtx[j][i];
                xtx[i][j] = v;
            }
        }
        for (i, row) in xtx.iter_mut().enumerate().take(d) {
            row[i] += self.ridge.max(0.0);
        }
        let sol = solve_linear_system(&mut xtx, &mut xty)?;
        self.intercept = sol[d];
        self.weights = sol[..d].to_vec();
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        debug_assert!(self.fitted, "predict before fit");
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 3x0 - 2x1 + 5
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut lr = LinearRegression::new();
        lr.fit(&data).unwrap();
        assert!((lr.weights()[0] - 3.0).abs() < 1e-6);
        assert!((lr.weights()[1] + 2.0).abs() < 1e-6);
        assert!((lr.intercept() - 5.0).abs() < 1e-5);
        assert!((lr.predict(&[10.0, 1.0]) - 33.0).abs() < 1e-5);
    }

    #[test]
    fn handles_collinear_features_via_ridge() {
        // x1 = 2*x0 exactly: OLS is singular, ridge resolves it.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut lr = LinearRegression::with_ridge(1e-6);
        lr.fit(&data).unwrap();
        // Prediction still matches the underlying function y = x0.
        assert!((lr.predict(&[4.0, 8.0]) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn single_feature_mean_behaviour() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![1.0, 3.0]).unwrap();
        let mut lr = LinearRegression::new();
        lr.fit(&data).unwrap();
        assert!((lr.predict(&[0.5]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solve_detects_singular_matrix() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear_system(&mut a, &mut b).is_err());
    }

    #[test]
    fn solve_simple_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let mut a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let mut b = vec![5.0, 1.0];
        let x = solve_linear_system(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }
}
