//! Seeded matrix factorization with bias terms for collaborative
//! filtering over a partially-observed matrix.
//!
//! The Sturgeon growth direction "interference scoring for unseen apps"
//! follows CuttleSys: performance/power of an *unprofiled* application is
//! predicted from the profiled app×config matrix by factorizing the
//! observed cells into low-rank latent factors. The model is
//!
//! ```text
//! r̂(i, j) = μ + b_i + c_j + p_i · q_j
//! ```
//!
//! with global mean `μ`, per-row and per-column biases, and `k`-dimensional
//! latent vectors, trained by plain SGD over the observed cells. Training
//! is fully deterministic for a given seed: factor initialization and the
//! per-epoch visit order both come from one seeded RNG, and no parallelism
//! is involved — two fits with identical inputs are bit-identical.

use crate::model::MlError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`MatrixFactorization`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfParams {
    /// Latent dimensionality `k`.
    pub latent_dim: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// L2 penalty on biases and factors.
    pub regularization: f64,
    /// Full passes over the observed cells.
    pub epochs: usize,
    /// Half-width of the uniform factor initialization (scaled by
    /// `1/√k` so the initial dot products stay O(init_scale)).
    pub init_scale: f64,
    /// RNG seed for initialization and visit order.
    pub seed: u64,
}

impl Default for MfParams {
    fn default() -> Self {
        Self {
            latent_dim: 8,
            learning_rate: 0.02,
            regularization: 0.005,
            epochs: 300,
            init_scale: 0.1,
            seed: 0x5EED,
        }
    }
}

/// One observed cell: `(row, col, value)`.
pub type MfCell = (usize, usize, f64);

/// Biased matrix factorization trained by seeded SGD.
#[derive(Debug, Clone)]
pub struct MatrixFactorization {
    params: MfParams,
    rows: usize,
    cols: usize,
    mean: f64,
    row_bias: Vec<f64>,
    col_bias: Vec<f64>,
    /// Row-major `rows × k`.
    row_factors: Vec<f64>,
    /// Row-major `cols × k`.
    col_factors: Vec<f64>,
    fitted: bool,
}

impl MatrixFactorization {
    /// An unfitted model; validates the hyper-parameters.
    pub fn new(params: MfParams) -> Result<Self, MlError> {
        if params.latent_dim == 0 {
            return Err(MlError::InvalidParameter("latent_dim must be ≥ 1".into()));
        }
        if params.learning_rate <= 0.0 || !params.learning_rate.is_finite() {
            return Err(MlError::InvalidParameter(
                "learning_rate must be positive and finite".into(),
            ));
        }
        if params.regularization < 0.0 || !params.regularization.is_finite() {
            return Err(MlError::InvalidParameter(
                "regularization must be non-negative and finite".into(),
            ));
        }
        if params.epochs == 0 {
            return Err(MlError::InvalidParameter("epochs must be ≥ 1".into()));
        }
        Ok(Self {
            params,
            rows: 0,
            cols: 0,
            mean: 0.0,
            row_bias: Vec::new(),
            col_bias: Vec::new(),
            row_factors: Vec::new(),
            col_factors: Vec::new(),
            fitted: false,
        })
    }

    /// The hyper-parameters in force.
    pub fn params(&self) -> &MfParams {
        &self.params
    }

    /// Fits the factorization to the observed cells of a `rows × cols`
    /// matrix, replacing any previous fit.
    pub fn fit(&mut self, rows: usize, cols: usize, cells: &[MfCell]) -> Result<(), MlError> {
        if rows == 0 || cols == 0 {
            return Err(MlError::InvalidDataset(
                "matrix must have at least one row and column".into(),
            ));
        }
        if cells.is_empty() {
            return Err(MlError::InvalidDataset("no observed cells".into()));
        }
        for &(r, c, v) in cells {
            if r >= rows || c >= cols {
                return Err(MlError::InvalidDataset(format!(
                    "cell ({r}, {c}) outside {rows}×{cols} matrix"
                )));
            }
            if !v.is_finite() {
                return Err(MlError::InvalidDataset("non-finite cell value".into()));
            }
        }
        let k = self.params.latent_dim;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let half = self.params.init_scale / (k as f64).sqrt();
        self.rows = rows;
        self.cols = cols;
        self.mean = cells.iter().map(|&(_, _, v)| v).sum::<f64>() / cells.len() as f64;
        self.row_bias = vec![0.0; rows];
        self.col_bias = vec![0.0; cols];
        self.row_factors = (0..rows * k).map(|_| rng.gen_range(-half..half)).collect();
        self.col_factors = (0..cols * k).map(|_| rng.gen_range(-half..half)).collect();

        let lr = self.params.learning_rate;
        let reg = self.params.regularization;
        let mut order: Vec<usize> = (0..cells.len()).collect();
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &ix in &order {
                let (r, c, v) = cells[ix];
                let (pr, qc) = (r * k, c * k);
                let dot: f64 = (0..k)
                    .map(|d| self.row_factors[pr + d] * self.col_factors[qc + d])
                    .sum();
                let err = v - (self.mean + self.row_bias[r] + self.col_bias[c] + dot);
                if !err.is_finite() {
                    return Err(MlError::Numerical("SGD diverged (non-finite error)".into()));
                }
                self.row_bias[r] += lr * (err - reg * self.row_bias[r]);
                self.col_bias[c] += lr * (err - reg * self.col_bias[c]);
                for d in 0..k {
                    let pf = self.row_factors[pr + d];
                    let qf = self.col_factors[qc + d];
                    self.row_factors[pr + d] += lr * (err * qf - reg * pf);
                    self.col_factors[qc + d] += lr * (err * pf - reg * qf);
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// True once [`fit`](Self::fit) succeeded.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Matrix shape `(rows, cols)` of the last fit.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Predicted value of cell `(row, col)`. Panics when unfitted or out
    /// of range (use [`try_predict`](Self::try_predict) for user input).
    pub fn predict(&self, row: usize, col: usize) -> f64 {
        self.try_predict(row, col)
            .expect("predict called before fit or outside the matrix")
    }

    /// Predicted value, or an error when unfitted / out of range.
    pub fn try_predict(&self, row: usize, col: usize) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row >= self.rows || col >= self.cols {
            return Err(MlError::InvalidParameter(format!(
                "cell ({row}, {col}) outside {}×{} matrix",
                self.rows, self.cols
            )));
        }
        let k = self.params.latent_dim;
        let p = &self.row_factors[row * k..(row + 1) * k];
        let q = &self.col_factors[col * k..(col + 1) * k];
        let dot: f64 = p.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
        Ok(self.mean + self.row_bias[row] + self.col_bias[col] + dot)
    }

    /// Root-mean-square error of the fitted model over a cell set (e.g.
    /// the held-out cells of a masked matrix).
    pub fn rmse(&self, cells: &[MfCell]) -> f64 {
        if cells.is_empty() {
            return 0.0;
        }
        let sse: f64 = cells
            .iter()
            .map(|&(r, c, v)| {
                let e = v - self.predict(r, c);
                e * e
            })
            .sum();
        (sse / cells.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth rank-2-plus-bias synthetic matrix.
    fn synthetic(rows: usize, cols: usize) -> Vec<MfCell> {
        let mut cells = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = 1.0
                    + 0.3 * r as f64 / rows as f64
                    + 0.2 * c as f64 / cols as f64
                    + 0.5 * (r as f64 / rows as f64) * (c as f64 / cols as f64);
                cells.push((r, c, v));
            }
        }
        cells
    }

    #[test]
    fn reconstructs_low_rank_matrix() {
        let all = synthetic(12, 40);
        // Hide every 7th cell (stride coprime to the width, so no
        // column goes fully dark); train on the rest.
        let train: Vec<MfCell> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 != 0)
            .map(|(_, &c)| c)
            .collect();
        let held: Vec<MfCell> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 == 0)
            .map(|(_, &c)| c)
            .collect();
        let mut mf = MatrixFactorization::new(MfParams::default()).unwrap();
        mf.fit(12, 40, &train).unwrap();
        assert!(mf.rmse(&train) < 0.02, "train rmse {}", mf.rmse(&train));
        assert!(mf.rmse(&held) < 0.05, "held-out rmse {}", mf.rmse(&held));
    }

    #[test]
    fn deterministic_per_seed() {
        let cells = synthetic(6, 20);
        let fit = |seed| {
            let mut mf = MatrixFactorization::new(MfParams {
                seed,
                epochs: 50,
                ..MfParams::default()
            })
            .unwrap();
            mf.fit(6, 20, &cells).unwrap();
            (0..6)
                .flat_map(|r| (0..20).map(move |c| (r, c)))
                .map(|(r, c)| mf.predict(r, c).to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(fit(7), fit(7), "same seed must be bit-identical");
        assert_ne!(fit(7), fit(8), "different seeds must differ");
    }

    #[test]
    fn bias_terms_carry_cold_rows() {
        // A row with a single observed cell still predicts near the
        // column profile: biases generalize where factors cannot.
        let mut cells = synthetic(8, 30);
        let cold_row = 7usize;
        cells.retain(|&(r, c, _)| r != cold_row || c == 0);
        let mut mf = MatrixFactorization::new(MfParams::default()).unwrap();
        mf.fit(8, 30, &cells).unwrap();
        let truth = synthetic(8, 30);
        let cold: Vec<MfCell> = truth
            .iter()
            .filter(|&&(r, _, _)| r == cold_row)
            .copied()
            .collect();
        assert!(mf.rmse(&cold) < 0.25, "cold-row rmse {}", mf.rmse(&cold));
    }

    #[test]
    fn rejects_bad_parameters_and_cells() {
        assert!(MatrixFactorization::new(MfParams {
            latent_dim: 0,
            ..MfParams::default()
        })
        .is_err());
        assert!(MatrixFactorization::new(MfParams {
            learning_rate: 0.0,
            ..MfParams::default()
        })
        .is_err());
        assert!(MatrixFactorization::new(MfParams {
            epochs: 0,
            ..MfParams::default()
        })
        .is_err());
        let mut mf = MatrixFactorization::new(MfParams::default()).unwrap();
        assert!(mf.fit(0, 4, &[(0, 0, 1.0)]).is_err());
        assert!(mf.fit(2, 2, &[]).is_err());
        assert!(mf.fit(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(mf.fit(2, 2, &[(0, 0, f64::NAN)]).is_err());
        assert!(mf.try_predict(0, 0).is_err(), "unfitted predict must fail");
        mf.fit(2, 2, &[(0, 0, 1.0), (1, 1, 2.0), (0, 1, 1.5)])
            .unwrap();
        assert!(mf.try_predict(2, 0).is_err());
    }
}
