//! K-nearest-neighbour regression and classification.
//!
//! The paper finds KNN regression "the most suitable for the power model
//! of both LS/BE applications" and competitive for BE performance models
//! (Fig. 6/7). With only four features and a few thousand profiling
//! samples, a brute-force scan with a bounded max-heap is both simple and
//! fast (well under the paper's 0.04 ms/prediction budget in release
//! builds).

use crate::model::{check_binary_targets, Classifier, Dataset, MlError, Regressor};
use crate::preprocess::Standardizer;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(distance, target)` pair ordered by distance for the bounded heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Neighbor {
    dist2: f64,
    y: f64,
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist2.total_cmp(&other.dist2)
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Shared KNN core: standardizes features at fit time and finds the `k`
/// nearest training rows at query time.
#[derive(Debug, Clone)]
struct KnnCore {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    scaler: Option<Standardizer>,
}

impl KnnCore {
    fn new(k: usize) -> Self {
        Self {
            k,
            x: Vec::new(),
            y: Vec::new(),
            scaler: None,
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        if self.k == 0 {
            return Err(MlError::InvalidParameter("k must be ≥ 1".into()));
        }
        if data.len() < self.k {
            return Err(MlError::InvalidDataset(format!(
                "k = {} exceeds dataset size {}",
                self.k,
                data.len()
            )));
        }
        let scaler = Standardizer::fit(data);
        let scaled = scaler.transform(data);
        self.x = scaled.x;
        self.y = scaled.y;
        self.scaler = Some(scaler);
        Ok(())
    }

    /// Returns the `(squared distance, target)` pairs of the `k` nearest
    /// neighbours of `x`.
    fn neighbors(&self, x: &[f64]) -> Vec<Neighbor> {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let q = scaler.transformed(x);
        // Max-heap of size k keyed on distance: the root is the current
        // worst candidate and is evicted by any closer point.
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(self.k + 1);
        for (row, &y) in self.x.iter().zip(&self.y) {
            let dist2 = squared_distance(&q, row);
            if heap.len() < self.k {
                heap.push(Neighbor { dist2, y });
            } else if dist2 < heap.peek().expect("heap non-empty").dist2 {
                heap.pop();
                heap.push(Neighbor { dist2, y });
            }
        }
        heap.into_vec()
    }
}

/// How neighbour targets are folded into one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aggregation {
    /// Plain mean of the `k` targets.
    Mean,
    /// Inverse-distance-weighted mean. Removes the smoothing bias at the
    /// edges of the training domain (critical for power models queried at
    /// the all-cores/max-frequency corner).
    Weighted,
    /// Maximum of the `k` targets: the paper's conservative peak-power
    /// training ("Sturgeon builds power models based on their peak powers
    /// conservatively"). Mean-style aggregation systematically
    /// *under*-predicts at domain boundaries because every neighbour lies
    /// on the interior, cheaper side; taking the neighbourhood peak turns
    /// that bias into a safety margin instead.
    Peak,
}

/// Folds neighbour targets into one prediction per the aggregation mode.
fn aggregate(neighbors: &[Neighbor], mode: Aggregation) -> f64 {
    if neighbors.is_empty() {
        return 0.0;
    }
    match mode {
        Aggregation::Weighted => {
            // An exact-match neighbour short-circuits to its target.
            if let Some(hit) = neighbors.iter().find(|n| n.dist2 < 1e-18) {
                return hit.y;
            }
            let mut num = 0.0;
            let mut den = 0.0;
            for n in neighbors {
                let w = 1.0 / n.dist2.sqrt();
                num += w * n.y;
                den += w;
            }
            num / den
        }
        Aggregation::Mean => neighbors.iter().map(|n| n.y).sum::<f64>() / neighbors.len() as f64,
        Aggregation::Peak => neighbors
            .iter()
            .map(|n| n.y)
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

/// KNN regressor: predicts an aggregate (mean, distance-weighted mean, or
/// peak) of the `k` nearest neighbours' targets.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    core: KnnCore,
    mode: Aggregation,
}

impl KnnRegressor {
    /// Creates a plain-mean regressor with neighbourhood size `k`.
    pub fn new(k: usize) -> Self {
        Self {
            core: KnnCore::new(k),
            mode: Aggregation::Mean,
        }
    }

    /// Creates an inverse-distance-weighted regressor.
    pub fn weighted(k: usize) -> Self {
        Self {
            core: KnnCore::new(k),
            mode: Aggregation::Weighted,
        }
    }

    /// Creates a peak-of-neighbourhood regressor (conservative: predicts
    /// the largest target among the `k` nearest training rows).
    pub fn peak(k: usize) -> Self {
        Self {
            core: KnnCore::new(k),
            mode: Aggregation::Peak,
        }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.core.fit(data)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        aggregate(&self.core.neighbors(x), self.mode)
    }
}

/// KNN classifier: majority vote of the `k` nearest neighbours.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    core: KnnCore,
}

impl KnnClassifier {
    /// Creates a classifier with neighbourhood size `k` (odd values avoid
    /// ties).
    pub fn new(k: usize) -> Self {
        Self {
            core: KnnCore::new(k),
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, data: &Dataset) -> Result<(), MlError> {
        check_binary_targets(data)?;
        self.core.fit(data)
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        aggregate(&self.core.neighbors(x), Aggregation::Mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        // y = x0 + x1 over a 10×10 grid.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64, j as f64]);
                y.push((i + j) as f64);
            }
        }
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn k1_memorizes_training_points() {
        let data = grid();
        let mut m = KnnRegressor::new(1);
        m.fit(&data).unwrap();
        for (row, &y) in data.x.iter().zip(&data.y) {
            assert_eq!(m.predict(row), y);
        }
    }

    #[test]
    fn interpolates_smooth_functions() {
        let data = grid();
        let mut m = KnnRegressor::new(4);
        m.fit(&data).unwrap();
        // Query the centre of a grid cell: 4 symmetric neighbours average
        // to the exact function value.
        assert!((m.predict(&[4.5, 4.5]) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_k_and_oversized_k() {
        let data = grid();
        assert!(KnnRegressor::new(0).fit(&data).is_err());
        assert!(KnnRegressor::new(101).fit(&data).is_err());
    }

    #[test]
    fn classifier_majority_vote() {
        // Class 1 iff x0 > 5.
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 2.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 5.0 { 1.0 } else { 0.0 })
            .collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = KnnClassifier::new(3);
        m.fit(&data).unwrap();
        assert!(m.predict_label(&[9.0]));
        assert!(!m.predict_label(&[1.0]));
    }

    #[test]
    fn classifier_rejects_non_binary() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0.0, 3.0]).unwrap();
        assert!(KnnClassifier::new(1).fit(&data).is_err());
    }

    #[test]
    fn scaling_makes_features_comparable() {
        // Feature 1 has a huge scale but is irrelevant; with
        // standardization the relevant feature 0 still dominates.
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64, (i as f64) * 1e6])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let data = Dataset::new(x, y).unwrap();
        let mut m = KnnRegressor::new(5);
        m.fit(&data).unwrap();
        let p = m.predict(&[3.0, 25.0e6]);
        assert!(p.is_finite());
    }
}
