//! Evaluation metrics. The paper reports the coefficient of determination
//! R² for every model family (Figs. 6 and 7); classification models are
//! also scored with plain accuracy.

/// Coefficient of determination R² = 1 − SS_res / SS_tot.
///
/// Returns 1.0 for a perfect fit. When the targets are constant the metric
/// degenerates: we follow scikit-learn and return 1.0 if predictions are
/// also exact, else 0.0. Empty inputs yield 0.0.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let n = y_true.len() as f64;
    let mean = y_true.iter().sum::<f64>() / n;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Mean squared error.
pub fn mean_squared_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mean_absolute_error(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Fraction of matching hard labels.
pub fn accuracy(y_true: &[bool], y_pred: &[bool]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    hits as f64 / y_true.len() as f64
}

/// R² analogue for classifiers so they can share one axis with regressors
/// in the Fig. 6 reproduction: computed on the 0/1 labels, as is standard
/// when scoring a classifier with `r2_score`.
pub fn classification_r2(y_true: &[f64], labels_pred: &[bool]) -> f64 {
    let pred: Vec<f64> = labels_pred
        .iter()
        .map(|&b| if b { 1.0 } else { 0.0 })
        .collect();
    r2_score(y_true, &pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_perfect_fit_is_one() {
        let y = [1.0, 2.0, 3.0];
        assert!((r2_score(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_mean_predictor_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2_score(&y, &p).abs() < 1e-12);
    }

    #[test]
    fn r2_worse_than_mean_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let p = [3.0, 2.0, 1.0];
        assert!(r2_score(&y, &p) < 0.0);
    }

    #[test]
    fn r2_constant_targets() {
        let y = [5.0, 5.0];
        assert_eq!(r2_score(&y, &[5.0, 5.0]), 1.0);
        assert_eq!(r2_score(&y, &[5.0, 6.0]), 0.0);
    }

    #[test]
    fn mse_and_mae() {
        let y = [0.0, 2.0];
        let p = [1.0, 0.0];
        assert!((mean_squared_error(&y, &p) - 2.5).abs() < 1e-12);
        assert!((mean_absolute_error(&y, &p) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_matches() {
        let t = [true, false, true, true];
        let p = [true, true, true, false];
        assert!((accuracy(&t, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(r2_score(&[], &[]), 0.0);
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn classification_r2_matches_regression_on_labels() {
        let y = [0.0, 1.0, 1.0, 0.0];
        let labels = [false, true, false, false];
        let as_f: Vec<f64> = labels.iter().map(|&b| b as u8 as f64).collect();
        assert_eq!(classification_r2(&y, &labels), r2_score(&y, &as_f));
    }
}
