//! Golden-manifest coverage: every committed manifest under `scenarios/`
//! must parse, validate, and roundtrip through the canonical writer; and
//! the golden manifests must reproduce the figures committed under
//! `reports/` and the metrics committed under `baselines/golden.json`.
//! This pins the legacy figure bins and the manifest path to the same
//! numbers — neither can drift without this suite noticing.

use serde_json::Value;
use sturgeon::prelude::*;
use sturgeon::scenario::gate::{compare, default_rules};
use sturgeon::scenario::metrics_json;

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn load_scenario(rel: &str) -> Scenario {
    Scenario::load(repo_path(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

#[test]
fn every_committed_manifest_parses_validates_and_roundtrips() {
    let dir = repo_path("scenarios");
    let mut seen = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("scenarios/ directory is committed")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.display().to_string();
        let text = std::fs::read_to_string(&path).expect("manifest readable");
        let scenario = Scenario::from_toml_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = Scenario::from_toml_str(&scenario.to_toml_string())
            .unwrap_or_else(|e| panic!("{name} (canonical form): {e}"));
        assert_eq!(reparsed, scenario, "{name}: canonical writer drifted");
        seen += 1;
    }
    assert!(
        seen >= 6,
        "expected the committed smoke + golden manifests, found {seen}"
    );
}

#[test]
fn smoke_manifests_cover_node_robustness_and_fleet() {
    let node = load_scenario("scenarios/smoke_node.toml");
    assert_eq!(node.kind, ScenarioKind::Node);
    assert!(node.probe.is_some(), "smoke-node carries the search probe");
    let robustness = load_scenario("scenarios/smoke_robustness.toml");
    assert!(robustness.controller.hardened);
    assert!(robustness.faults.actuation_stuck_rate > 0.0);
    let fleet = load_scenario("scenarios/smoke_fleet.toml");
    assert_eq!(fleet.kind, ScenarioKind::Fleet);
    assert_eq!(fleet.fleet.as_ref().map(|f| f.nodes), Some(1000));
}

/// Parse a percentage like `98.58%` out of a whitespace-split report
/// column. Returns the value in percent.
fn pct(token: &str) -> f64 {
    token
        .trim_end_matches('%')
        .parse::<f64>()
        .unwrap_or_else(|e| panic!("bad percentage token {token:?}: {e}"))
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 600-interval runs; run with --release"
)]
fn golden_fig9_matches_committed_report_and_baseline() {
    let scenario = load_scenario("scenarios/golden_fig9.toml");
    let outcome = scenario.run().expect("golden fig9 run");

    // 1. The manifest run reproduces the committed fig9 sturgeon column
    //    for memcached+rt (the flagship pair).
    let report = std::fs::read_to_string(repo_path("reports/fig9.txt"))
        .expect("reports/fig9.txt is committed");
    let row = report
        .lines()
        .find(|l| l.trim_start().starts_with("memcached+rt"))
        .expect("fig9 report has a memcached+rt row");
    let sturgeon_pct = pct(row.split_whitespace().nth(1).expect("sturgeon column"));
    assert!(
        (outcome.metrics.qos_rate * 100.0 - sturgeon_pct).abs() < 0.005,
        "manifest QoS {:.4}% drifted from reports/fig9.txt {:.2}%",
        outcome.metrics.qos_rate * 100.0,
        sturgeon_pct
    );

    // 2. The full metrics row gates against the committed golden baseline.
    gate_against_golden(&[outcome.metrics]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 600-interval runs; run with --release"
)]
fn golden_robustness_matches_committed_report_and_baseline() {
    let scenario = load_scenario("scenarios/golden_robustness.toml");
    let outcome = scenario.run().expect("golden robustness run");
    assert!(outcome.metrics.faults_seen > 0, "fault plan must fire");

    // The hardened actuator-fault row of reports/tab_robustness.txt.
    let report = std::fs::read_to_string(repo_path("reports/tab_robustness.txt"))
        .expect("reports/tab_robustness.txt is committed");
    let row = report
        .lines()
        .find(|l| l.contains("hardened") && l.contains("actuator") && !l.contains("un"))
        .expect("robustness report has a hardened actuator-fault row");
    // First bare-numeric token after the label (the label's "10%" does
    // not parse as f64, so the qos% column is the first hit).
    let qos_col = row
        .split_whitespace()
        .find_map(|tok| tok.parse::<f64>().ok())
        .expect("hardened row carries a QoS percentage");
    assert!(
        (outcome.metrics.qos_rate * 100.0 - qos_col).abs() < 0.005,
        "manifest QoS {:.4}% drifted from reports/tab_robustness.txt {:.2}%",
        outcome.metrics.qos_rate * 100.0,
        qos_col
    );

    gate_against_golden(&[outcome.metrics]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "two full 240-interval fleet runs; run with --release"
)]
fn golden_budget_cut_migration_beats_static_pinning() {
    let scenario = load_scenario("scenarios/golden_budget_cut.toml");
    assert!(scenario.budget.is_some(), "manifest configures [budget]");
    assert!(
        scenario.placement.is_some(),
        "manifest configures [placement]"
    );
    let outcome = scenario.run().expect("golden budget-cut run");

    // The same run with the placement engine disabled: jobs stay pinned
    // to their initial shard through the crowd and the budget cut.
    let mut pinned = scenario.clone();
    pinned.placement = None;
    let static_outcome = pinned.run().expect("pinned twin run");

    let m = &outcome.metrics;
    let p = &static_outcome.metrics;
    assert!(
        m.migrations.unwrap_or(0) > 0,
        "the budget cut must trigger migrations"
    );
    assert!(
        m.be_throughput > p.be_throughput,
        "migration must strictly beat static pinning: {} vs {}",
        m.be_throughput,
        p.be_throughput
    );
    assert!(
        m.qos_rate >= p.qos_rate - 0.005,
        "migration must not sacrifice QoS: {} vs {}",
        m.qos_rate,
        p.qos_rate
    );

    // Per-node power caps hold: no node's mean power exceeds the
    // nominal per-node cap the pair was profiled under (the budget tree
    // only ever tightens below nominal, never grants above it).
    let nominal_w = ExperimentSetup::new(scenario.pair, scenario.seed).budget_w();
    let fleet = outcome.fleet.as_ref().expect("fleet outcome");
    for node in &fleet.nodes {
        assert!(
            node.mean_power_w <= nominal_w + 1e-6,
            "node {} mean power {:.2} W above nominal cap {:.2} W",
            node.node,
            node.mean_power_w,
            nominal_w
        );
    }

    gate_against_golden(&[outcome.metrics]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "three full 240-interval fleet runs; run with --release"
)]
fn golden_cold_start_cf_closes_on_full_profile_and_beats_fallback() {
    let scenario = load_scenario("scenarios/golden_cold_start.toml");
    assert!(scenario.scoring.is_some(), "manifest configures [scoring]");
    let outcome = scenario.run().expect("golden cold-start run");

    // Twin 1: the same fleet with raytrace fully profiled — the ceiling
    // the cold-start path is measured against.
    let mut full = scenario.clone();
    full.scoring.as_mut().expect("scoring table").cold_start = false;
    let full_outcome = full.run().expect("fully-profiled twin run");

    // Twin 2: the no-model column-statistics fallback — the floor it
    // must clear to justify existing.
    let mut naive = scenario.clone();
    naive.scoring.as_mut().expect("scoring table").fallback = true;
    let naive_outcome = naive.run().expect("fallback twin run");

    let cf = &outcome.metrics;
    let fp = &full_outcome.metrics;
    let fb = &naive_outcome.metrics;
    assert_eq!(
        cf.cold_start_cells,
        Some(360),
        "raytrace's full config row must be synthesized"
    );
    assert!(
        cf.set_scores.unwrap_or(0) > 0,
        "the learned set scorer must be consulted by placement"
    );
    assert!(
        cf.rmse_heldout.unwrap_or(f64::INFINITY) < 0.1,
        "held-out throughput RMSE blew up: {:?}",
        cf.rmse_heldout
    );
    assert!(
        cf.be_throughput >= 0.90 * fp.be_throughput,
        "cold start must land within 10% of the fully-profiled run: {} vs {}",
        cf.be_throughput,
        fp.be_throughput
    );
    assert!(
        cf.be_throughput > fb.be_throughput,
        "cold start must strictly beat the no-model fallback: {} vs {}",
        cf.be_throughput,
        fb.be_throughput
    );
    assert!(
        cf.qos_rate >= fb.qos_rate - 0.005,
        "beating the fallback must not sacrifice QoS: {} vs {}",
        cf.qos_rate,
        fb.qos_rate
    );
    assert!(
        cf.qos_rate >= fp.qos_rate - 0.005,
        "cold start must hold the fully-profiled QoS: {} vs {}",
        cf.qos_rate,
        fp.qos_rate
    );

    gate_against_golden(&[outcome.metrics]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full 240-interval fleet run; run with --release"
)]
fn golden_rack_cut_interior_budget_events_fire_and_hold_caps() {
    let scenario = load_scenario("scenarios/golden_rack_cut.toml");
    let budget = scenario
        .budget
        .as_ref()
        .expect("manifest configures [budget]");
    assert!(
        budget.events.iter().any(|e| e.level == BudgetLevel::Rack)
            && budget.events.iter().any(|e| e.level == BudgetLevel::Row),
        "manifest schedules both a rack-level and a row-level cut"
    );
    let outcome = scenario.run().expect("golden rack-cut run");

    let m = &outcome.metrics;
    assert!(
        m.budget_reclaims.unwrap_or(0) > 0,
        "interior cuts must trigger reclamation passes"
    );
    assert!(
        m.migrations.unwrap_or(0) > 0,
        "the squeezed regions must shed BE jobs"
    );

    // The interior cuts only ever tighten below nominal, so no node may
    // average above the per-node cap the pair was profiled under.
    let nominal_w = ExperimentSetup::new(scenario.pair, scenario.seed).budget_w();
    let fleet = outcome.fleet.as_ref().expect("fleet outcome");
    for node in &fleet.nodes {
        assert!(
            node.mean_power_w <= nominal_w + 1e-6,
            "node {} mean power {:.2} W above nominal cap {:.2} W",
            node.node,
            node.mean_power_w,
            nominal_w
        );
    }

    gate_against_golden(&[outcome.metrics]);
}

/// Gate freshly produced metrics rows against `baselines/golden.json`
/// in subset mode (each test produces one of the two committed rows).
fn gate_against_golden(rows: &[ScenarioMetrics]) {
    let baseline_text = std::fs::read_to_string(repo_path("baselines/golden.json"))
        .expect("baselines/golden.json is committed");
    let baseline: Value = serde_json::from_str(&baseline_text).expect("golden baseline parses");
    let current: Value =
        serde_json::from_str(&metrics_json(rows)).expect("fresh metrics serialize");
    let report = compare(&baseline, &current, &default_rules(), true);
    assert!(
        report.passed(),
        "golden baseline regression:\n{}",
        report.table()
    );
}
