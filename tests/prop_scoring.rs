//! Property-based coverage of the cold-start scoring subsystem: the
//! factorization must reconstruct masked profile matrices within
//! tolerance across seeds and mask densities, the learned set score must
//! be a permutation-invariant function that degrades monotonically in
//! contention, and a fleet with scoring *disabled* must stay bit-for-bit
//! on the legacy trajectory (the committed golden baselines pin that
//! trajectory to its pre-scoring values, so together these guarantee the
//! subsystem is strictly opt-in).

use proptest::prelude::*;
use sturgeon::fleet::{Fleet, FleetParams, FleetResult, TrainingMode};
use sturgeon::placement::PlacementParams;
use sturgeon::prelude::*;
use sturgeon_workloads::loadgen::LoadProfile;

fn masked_params(seed: u64, mask_fraction: f64) -> ScoringParams {
    ScoringParams {
        masked_app: Some(BeAppId::Raytrace.name().to_string()),
        seed,
        mask_fraction,
        ..ScoringParams::default()
    }
}

/// Applies the permutation implied by sorting `priorities` to `set`.
fn permute(set: &[&str], priorities: &[u64]) -> Vec<String> {
    let mut order: Vec<usize> = (0..set.len()).collect();
    order.sort_by_key(|&i| (priorities[i % priorities.len()], i));
    order.into_iter().map(|i| set[i].to_string()).collect()
}

proptest! {
    // Each case fits three factorizations (~60 ms); keep the budget low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn factorization_reconstructs_within_tolerance_across_seeds(
        seed in 0u64..u64::MAX / 2,
        mask_fraction in 0.05f64..0.45,
    ) {
        let params = masked_params(seed, mask_fraction);
        let spec = NodeSpec::xeon_e5_2630_v4();
        let matrix = ProfileMatrix::build(&spec, &PowerModel::default(), &params)
            .expect("matrix builds for every valid seed/mask");
        prop_assert!(matrix.cells_hidden() > 0);
        let cf = ColdStartPredictor::fit(matrix, &params).expect("factorization fits");
        let tput = cf.plane_fit(ScoreMetric::Throughput);
        prop_assert!(
            tput.rmse_observed < 0.10,
            "tput training rmse {} at seed {seed} mask {mask_fraction}",
            tput.rmse_observed
        );
        prop_assert!(
            tput.rmse_heldout < 0.25,
            "tput held-out rmse {} at seed {seed} mask {mask_fraction}",
            tput.rmse_heldout
        );
        let power = cf.plane_fit(ScoreMetric::Power);
        prop_assert!(
            power.rmse_heldout < 2.0,
            "power held-out rmse {} W at seed {seed} mask {mask_fraction}",
            power.rmse_heldout
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn set_score_is_permutation_invariant(
        sigmas in prop::collection::vec(0.0f64..1.0, 6..7),
        picks in prop::collection::vec(0usize..6, 1..8),
        priorities in prop::collection::vec(0u64..u64::MAX, 8..9),
    ) {
        let names = ["a", "b", "c", "d", "e", "f"];
        let scorer = SetScorer::from_sigmas(
            names.iter().zip(&sigmas).map(|(&n, &s)| (n, s)),
        );
        let set: Vec<&str> = picks.iter().map(|&i| names[i]).collect();
        let shuffled = permute(&set, &priorities);
        prop_assert_eq!(
            scorer.score(&set).to_bits(),
            scorer.score(&shuffled).to_bits(),
            "score must not depend on member order: {:?} vs {:?}",
            set,
            shuffled
        );
    }

    #[test]
    fn set_score_degrades_monotonically_in_sigma(
        base in 0.0f64..0.9,
        bump in 0.01f64..0.1,
        other in 0.0f64..1.0,
        k in 2usize..6,
    ) {
        // Two scorers identical except one member's contention rises:
        // every set containing that member must score strictly lower.
        let quiet = SetScorer::from_sigmas([("hot", base), ("cold", other)]);
        let loud = SetScorer::from_sigmas([("hot", base + bump), ("cold", other)]);
        let mut set = vec!["cold"; k - 1];
        set.push("hot");
        prop_assert!(
            loud.score(&set) < quiet.score(&set),
            "raising sigma {base} -> {} must lower the score ({} vs {})",
            base + bump,
            loud.score(&set),
            quiet.score(&set)
        );
        // And scores stay in the sane band: (0, k].
        let s = quiet.score(&set);
        prop_assert!(s > 0.0 && s <= k as f64, "score {s} out of (0, {k}]");
    }
}

fn run_fleet(scoring: Option<ScoringParams>) -> FleetResult {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let params = FleetParams {
        shards: 2,
        training: TrainingMode::Shared,
        placement: Some(PlacementParams {
            interval_s: 5,
            ..PlacementParams::default()
        }),
        scoring,
        ..FleetParams::default()
    };
    let mut fleet = Fleet::new(pair, 8, params, 42);
    fleet.run(LoadProfile::paper_fluctuating(60.0), 20)
}

fn assert_nodes_bit_identical(a: &FleetResult, b: &FleetResult) {
    assert_eq!(a.nodes.len(), b.nodes.len());
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.node, y.node);
        assert_eq!(
            x.qos_rate.to_bits(),
            y.qos_rate.to_bits(),
            "node {}",
            x.node
        );
        assert_eq!(
            x.mean_be_throughput.to_bits(),
            y.mean_be_throughput.to_bits(),
            "node {}",
            x.node
        );
        assert_eq!(
            x.mean_power_w.to_bits(),
            y.mean_power_w.to_bits(),
            "node {}",
            x.node
        );
        assert_eq!(
            x.overload_fraction.to_bits(),
            y.overload_fraction.to_bits(),
            "node {}",
            x.node
        );
    }
    assert_eq!(a.qos_rate.to_bits(), b.qos_rate.to_bits());
    assert_eq!(
        a.total_be_throughput.to_bits(),
        b.total_be_throughput.to_bits()
    );
    assert_eq!(
        a.mean_fleet_power_w.to_bits(),
        b.mean_fleet_power_w.to_bits()
    );
}

#[test]
fn scoring_disabled_runs_are_bit_identical_and_reproducible() {
    // `scoring: None` must be the exact legacy trajectory — same seed,
    // same run, twice over — and it must never consult the subsystem.
    let first = run_fleet(None);
    let second = run_fleet(None);
    assert_nodes_bit_identical(&first, &second);
    assert_eq!(first.cold_start_cells, 0);
    assert_eq!(first.set_scores, 0);
}

#[test]
fn scoring_enabled_runs_are_reproducible_too() {
    // Determinism holds with the full subsystem on: the mask, the
    // factorization and the scorer all derive from the pinned seed.
    let scoring = Some(ScoringParams::default());
    let first = run_fleet(scoring.clone());
    let second = run_fleet(scoring);
    assert_nodes_bit_identical(&first, &second);
    assert!(first.cold_start_cells > 0);
}
