//! Integration tests for the observability layer: golden-trace
//! determinism (same seed → byte-identical JSONL), the zero-cost contract
//! (a null sink leaves the run bit-identical to an unobserved one), and
//! metrics/trace consistency with the run's own fault accounting.

use sturgeon::profiler::ProfilerConfig;
use sturgeon::{obs::JsonlSink, prelude::*};

fn fast_profiler() -> ProfilerConfig {
    ProfilerConfig {
        ls_samples_per_load: 160,
        ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
        be_samples: 1000,
        seed: 77,
    }
}

fn sturgeon_for(setup: &ExperimentSetup) -> SturgeonController {
    let predictor = setup
        .train_predictor(fast_profiler(), PredictorConfig::default())
        .expect("training succeeds");
    SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::hardened(),
    )
}

fn flagship_setup() -> ExperimentSetup {
    ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    )
}

/// A fault-stressed Sturgeon run with the trace streamed into an
/// in-memory JSONL sink; returns the raw bytes.
fn traced_run_bytes(setup: &ExperimentSetup) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    setup
        .runner()
        .controller(sturgeon_for(setup))
        .load(LoadProfile::paper_fluctuating(60.0))
        .intervals(240)
        .faults(FaultPlan::everything(1309))
        .trace(&mut sink)
        .go()
        .expect("traced run succeeds");
    sink.into_inner()
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let setup = flagship_setup();
    let a = traced_run_bytes(&setup);
    let b = traced_run_bytes(&setup);
    assert!(!a.is_empty());
    assert_eq!(a, b, "pinned-seed JSONL traces must be byte-identical");

    // The stressed run must exercise a healthy slice of the taxonomy:
    // at least 5 distinct event types.
    let text = String::from_utf8(a).expect("JSONL is UTF-8");
    let mut kinds_seen = Vec::new();
    for line in text.lines() {
        let v = serde_json::from_str(line).expect("every line parses");
        match v {
            serde_json::Value::Object(fields) => {
                assert_eq!(fields.len(), 1, "one event-type key per line");
                let kind = fields[0].0.clone();
                assert!(
                    TraceEvent::kinds().contains(&kind.as_str()),
                    "unknown event type {kind}"
                );
                if !kinds_seen.contains(&kind) {
                    kinds_seen.push(kind);
                }
            }
            other => panic!("line is not an object: {other:?}"),
        }
    }
    assert!(
        kinds_seen.len() >= 5,
        "stressed run covered only {kinds_seen:?}"
    );
}

#[test]
fn null_sink_run_is_bit_identical_to_unobserved_run() {
    let setup = flagship_setup();
    let load = LoadProfile::paper_fluctuating(60.0);
    let plain = setup
        .runner()
        .controller(sturgeon_for(&setup))
        .load(load.clone())
        .intervals(120)
        .go()
        .unwrap();
    let mut null = NullSink;
    let nulled = setup
        .runner()
        .controller(sturgeon_for(&setup))
        .load(load.clone())
        .intervals(120)
        .trace(&mut null)
        .go()
        .unwrap();
    assert_eq!(plain.log.samples(), nulled.log.samples());
    assert_eq!(plain.audit.entries(), nulled.audit.entries());
    assert_eq!(plain.qos_rate, nulled.qos_rate);
    assert_eq!(plain.mean_be_throughput, nulled.mean_be_throughput);
    assert_eq!(plain.overload_fraction, nulled.overload_fraction);
    assert_eq!(plain.peak_power_w, nulled.peak_power_w);
    assert_eq!(plain.faults, nulled.faults);
}

#[test]
fn ring_sink_keeps_the_tail_and_counts_drops() {
    let setup = flagship_setup();
    let mut ring = RingSink::new(16);
    setup
        .runner()
        .controller(sturgeon_for(&setup))
        .load(LoadProfile::paper_fluctuating(60.0))
        .intervals(120)
        .trace(&mut ring)
        .go()
        .unwrap();
    assert_eq!(ring.len(), 16, "ring keeps exactly its capacity");
    assert!(ring.dropped() > 0, "120 intervals must overflow 16 slots");
    // The tail of the run ends at the last interval's timestamp.
    let last_t = ring.events().last().unwrap().t_s();
    assert_eq!(last_t, 120.0);
}

#[test]
fn metrics_registry_agrees_with_fault_report() {
    let setup = flagship_setup();
    let metrics = MetricsRegistry::new();
    let r = setup
        .runner()
        .controller(sturgeon_for(&setup))
        .load(LoadProfile::paper_fluctuating(60.0))
        .intervals(240)
        .faults(FaultPlan::everything(1309))
        .metrics(&metrics)
        .go()
        .unwrap();
    assert_eq!(metrics.counter("run.intervals"), 240);
    // `faults.injected` counts faulted intervals; the per-class counters
    // must reproduce the injector's own ledger exactly (an interval can
    // carry several classes, so the interval count is a lower bound).
    assert!(metrics.counter("faults.injected") > 0);
    assert!(metrics.counter("faults.injected") <= r.faults.faults_seen);
    assert_eq!(
        metrics.counter("faults.telemetry_noise"),
        r.faults.telemetry_noise
    );
    assert_eq!(
        metrics.counter("faults.telemetry_dropout"),
        r.faults.telemetry_dropouts
    );
    assert_eq!(
        metrics.counter("faults.actuation_stuck"),
        r.faults.actuation_stuck
    );
    assert_eq!(
        metrics.counter("faults.actuation_transient"),
        r.faults.actuation_transient
    );
    assert_eq!(
        metrics.counter("faults.actuation_partial"),
        r.faults.actuation_partial
    );
    assert_eq!(metrics.counter("faults.qps_spike"), r.faults.qps_spikes);
    assert_eq!(metrics.counter("faults.budget_cut"), r.faults.budget_cuts);
    assert_eq!(metrics.counter("actuation.retries"), r.faults.retries);
    assert_eq!(
        metrics.counter("actuation.retry_successes"),
        r.faults.retry_successes
    );
    assert_eq!(
        metrics.counter("actuation.failed_applies"),
        r.faults.failed_actuations
    );
    assert_eq!(
        metrics.counter("controller.safe_mode_entries"),
        r.faults.safe_mode_entries
    );
    assert!(metrics.counter("search.runs") > 0);
    let p95 = metrics.histogram("interval.p95_ms").expect("histogram");
    assert_eq!(p95.count, 240);
    // The JSON export round-trips through the serde shim.
    let json = metrics.to_json().to_string();
    let v = serde_json::from_str(&json).expect("metrics JSON parses");
    assert!(v["counters"].is_object());
    assert!(v["histograms"]["interval.p95_ms"]["count"]
        .as_u64()
        .is_some());
}

#[test]
fn builder_reports_invalid_runs_instead_of_panicking() {
    // A zero-length run is legal (empty report)…
    let setup = flagship_setup();
    let r = setup
        .runner()
        .controller(StaticReservationController)
        .load(LoadProfile::Constant { fraction: 0.3 })
        .intervals(0)
        .go()
        .unwrap();
    assert_eq!(r.log.len(), 0);
    assert_eq!(r.overload_fraction, 0.0);
}
