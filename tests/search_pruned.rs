//! Equivalence tests for the frontier-pruned search engine: the pruned
//! path must return the *same bits* as the exhaustive serial oracle —
//! on the pinned production setup, and under a property sweep over
//! random node geometries and workload pairs — while evaluating an
//! order of magnitude fewer candidates.

use proptest::prelude::*;
use std::sync::OnceLock;
use sturgeon::prelude::*;
use sturgeon::profiler::{Profiler, ProfilerConfig};
use sturgeon_workloads::catalog::{be_app, ls_service};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

/// Shared production-recipe predictor (training once keeps the suite fast).
fn shared_predictor() -> &'static (PerfPowerPredictor, ExperimentSetup) {
    static CELL: OnceLock<(PerfPowerPredictor, ExperimentSetup)> = OnceLock::new();
    CELL.get_or_init(|| {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
            2024,
        );
        let predictor = setup.train_default_predictor();
        (predictor, setup)
    })
}

#[test]
fn pruned_matches_oracle_on_pinned_production_setup() {
    let (predictor, setup) = shared_predictor();
    let search = ConfigSearch::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        SearchParams::default(),
    );
    for frac in [0.1, 0.2, 0.35, 0.5, 0.65, 0.8] {
        let qps = frac * setup.peak_qps();
        let full = search.exhaustive_serial(qps);
        let pruned = search.pruned(qps);
        assert_eq!(pruned.best, full.best, "config mismatch at frac {frac}");
        assert_eq!(
            pruned.predicted_throughput.to_bits(),
            full.predicted_throughput.to_bits()
        );
        assert!(
            full.stats.candidates >= 10 * pruned.stats.candidates.max(1),
            "frac {frac}: exhaustive evaluated {} candidates, pruned {}",
            full.stats.candidates,
            pruned.stats.candidates
        );
    }
}

#[test]
fn frontier_seeded_search_stays_oracle_equal_across_load_drift() {
    let (predictor, setup) = shared_predictor();
    let frontiers = FrontierCache::default();
    let search = ConfigSearch::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        SearchParams::default(),
    )
    .with_frontiers(&frontiers);
    // Walk a small diurnal-style load path; every step must stay
    // bit-identical to the oracle regardless of whether its incumbent
    // came from the frontier cache or the bisection warm-up.
    let mut reuses = 0;
    for frac in [0.30, 0.31, 0.33, 0.40, 0.33, 0.31, 0.30] {
        let qps = frac * setup.peak_qps();
        let pruned = search.pruned(qps);
        let full = search.exhaustive_serial(qps);
        assert_eq!(pruned.best, full.best, "mismatch at frac {frac}");
        reuses += pruned.stats.frontier_reuses;
    }
    assert!(reuses > 0, "revisited loads must reuse frontier seeds");
    assert_eq!(frontiers.reuses(), reuses);
}

/// Trains a small (but real) predictor on an arbitrary node geometry.
fn train_on(
    spec: NodeSpec,
    ls_idx: usize,
    be_idx: usize,
    seed: u64,
) -> (CoLocationEnv, PerfPowerPredictor) {
    let ls_ids = LsServiceId::all();
    let be_ids = BeAppId::all();
    let env = CoLocationEnv::new(
        spec,
        PowerModel::default(),
        ls_service(ls_ids[ls_idx % ls_ids.len()]),
        be_app(be_ids[be_idx % be_ids.len()]),
        InterferenceParams::none(),
        seed,
    );
    let d = Profiler::new(
        &env,
        ProfilerConfig {
            ls_samples_per_load: 40,
            ls_load_fractions: vec![0.2, 0.4, 0.6, 0.8],
            be_samples: 200,
            seed,
        },
    )
    .collect()
    .expect("profiling succeeds");
    let p = PerfPowerPredictor::train(
        &d,
        PredictorConfig::default(),
        env.static_power_w(),
        env.be().params.input_level as f64,
        env.ls().params.qos_target_ms,
    )
    .expect("training succeeds");
    (env, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence property: over random node geometries
    /// (core counts, DVFS tables, LLC sizes) and workload pairs, the
    /// pruned engine returns exactly the oracle's configuration — same
    /// bits, including tie-breaks — at every load level probed.
    #[test]
    fn pruned_equals_oracle_on_random_nodes_and_workloads(
        cores in 8u32..15,
        n_freqs in 6usize..9,
        ways in 8u32..13,
        base_centi in 100u32..140,
        step_centi in 5u32..20,
        ls_idx in 0usize..8,
        be_idx in 0usize..8,
        seed in 0u64..1_000,
        frac_pct in 15u32..80,
    ) {
        let spec = NodeSpec {
            total_cores: cores,
            freq_levels_ghz: (0..n_freqs)
                .map(|i| (base_centi as f64 + (i as f64) * step_centi as f64) / 100.0)
                .collect(),
            total_llc_ways: ways,
            llc_mb: 1.25 * ways as f64,
        };
        prop_assert!(spec.validate().is_ok());
        let (env, p) = train_on(spec.clone(), ls_idx, be_idx, seed);
        let search = ConfigSearch::new(&p, spec, env.budget_w(), SearchParams::default());
        let qps = (frac_pct as f64 / 100.0) * env.ls().params.peak_qps;
        let full = search.exhaustive_serial(qps);
        let pruned = search.pruned(qps);
        prop_assert_eq!(pruned.best, full.best);
        prop_assert_eq!(
            pruned.predicted_throughput.to_bits(),
            full.predicted_throughput.to_bits()
        );
        // The parallel and serial pruned variants agree too.
        let ser = search.pruned_serial(qps);
        prop_assert_eq!(ser.best, pruned.best);
        prop_assert_eq!(ser.stats.candidates, pruned.stats.candidates);
        // Pruning must never *increase* work relative to the oracle.
        prop_assert!(pruned.stats.candidates <= full.stats.candidates);
    }
}
