//! Equivalence tests for the latticed frontier-pruned search engine.
//!
//! The engine answers from QPS-slab envelopes, so its oracle is layered:
//! at *arbitrary* loads it must return the same bits as the unpruned
//! envelope sweep (`exhaustive_latticed`); at *slab-center* loads the
//! envelope degenerates to the live models and the engine must match
//! the live exhaustive serial oracle bit for bit. The property sweep
//! additionally checks the slabs cell-by-cell against the live
//! predictor, that the between-slab envelope is never optimistic, and
//! that incremental re-search under one-bucket QPS walks is
//! bit-identical to the full pruned sweep.

use proptest::prelude::*;
use std::sync::OnceLock;
use sturgeon::prelude::*;
use sturgeon::profiler::{Profiler, ProfilerConfig};
use sturgeon_workloads::catalog::{be_app, ls_service};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

/// Shared production-recipe predictor (training once keeps the suite fast).
fn shared_predictor() -> &'static (PerfPowerPredictor, ExperimentSetup) {
    static CELL: OnceLock<(PerfPowerPredictor, ExperimentSetup)> = OnceLock::new();
    CELL.get_or_init(|| {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
            2024,
        );
        let predictor = setup.train_default_predictor();
        (predictor, setup)
    })
}

#[test]
fn pruned_matches_envelope_oracle_on_pinned_production_setup() {
    let (predictor, setup) = shared_predictor();
    let search = ConfigSearch::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        SearchParams::default(),
    );
    for frac in [0.1, 0.2, 0.35, 0.5, 0.65, 0.8] {
        let qps = frac * setup.peak_qps();
        let full = search.exhaustive_latticed(qps);
        let pruned = search.pruned(qps);
        assert_eq!(pruned.best, full.best, "config mismatch at frac {frac}");
        assert_eq!(
            pruned.predicted_throughput.to_bits(),
            full.predicted_throughput.to_bits()
        );
        assert!(
            pruned.stats.candidates <= full.stats.candidates,
            "frac {frac}: envelope sweep evaluated {} candidates, pruned {}",
            full.stats.candidates,
            pruned.stats.candidates
        );
        assert_eq!(
            pruned.stats.model_calls, 0,
            "the latticed inner loop must not touch the live models"
        );
    }
}

#[test]
fn pruned_matches_live_oracle_at_slab_centers() {
    let (predictor, setup) = shared_predictor();
    let params = SearchParams::default();
    let search = ConfigSearch::new(predictor, setup.spec().clone(), setup.budget_w(), params);
    let slabs = predictor.ls_slabs(setup.spec(), params.power_load_headroom);
    for bucket in [6u64, 13, 26, 40, 51] {
        let qps = slabs.center(bucket);
        let live = search.exhaustive_serial(qps);
        let pruned = search.pruned(qps);
        assert_eq!(pruned.best, live.best, "config mismatch at bucket {bucket}");
        assert_eq!(
            pruned.predicted_throughput.to_bits(),
            live.predicted_throughput.to_bits(),
            "throughput bits differ at bucket {bucket}"
        );
    }
}

#[test]
fn frontier_seeded_search_stays_oracle_equal_across_load_drift() {
    let (predictor, setup) = shared_predictor();
    let frontiers = FrontierCache::default();
    let search = ConfigSearch::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        SearchParams::default(),
    )
    .with_frontiers(&frontiers);
    // Walk a small diurnal-style load path; every step must stay
    // bit-identical to the envelope oracle, whether it ran the full
    // sweep (seeded or not) or the incremental slice-reuse path.
    let mut reuses = 0;
    let mut incremental = 0;
    for frac in [0.30, 0.31, 0.33, 0.40, 0.33, 0.31, 0.30] {
        let qps = frac * setup.peak_qps();
        let pruned = search.pruned(qps);
        let full = search.exhaustive_latticed(qps);
        assert_eq!(pruned.best, full.best, "mismatch at frac {frac}");
        reuses += pruned.stats.frontier_reuses;
        incremental +=
            pruned.stats.incremental_slices_reused + pruned.stats.incremental_slices_rescanned;
    }
    assert!(reuses > 0, "revisited loads must reuse frontier seeds");
    assert!(
        incremental > 0,
        "small drifts must take the incremental path"
    );
    assert!(frontiers.reuses() >= reuses);
}

#[test]
fn incremental_walk_is_bit_identical_to_full_pruned() {
    let (predictor, setup) = shared_predictor();
    let params = SearchParams::default();
    let frontiers = FrontierCache::default();
    let warm = ConfigSearch::new(predictor, setup.spec().clone(), setup.budget_w(), params)
        .with_frontiers(&frontiers);
    let cold = ConfigSearch::new(predictor, setup.spec().clone(), setup.budget_w(), params);
    let slabs = predictor.ls_slabs(setup.spec(), params.power_load_headroom);
    let q = slabs.quantum();
    // An arbitrary one-bucket QPS walk (steps of at most one quantum):
    // the stateful engine reuses parked slice outcomes, the stateless
    // one re-sweeps, and they must agree bit for bit at every step.
    let mut qps = 20.4 * q;
    for delta in [0.9, -0.3, 1.0, 0.6, -1.0, -0.8, 0.2, 1.0, -0.5, 0.95] {
        qps += delta * q;
        let inc = warm.pruned(qps);
        let full = cold.pruned(qps);
        assert_eq!(inc.best, full.best, "config mismatch at qps {qps}");
        assert_eq!(
            inc.predicted_throughput.to_bits(),
            full.predicted_throughput.to_bits(),
            "throughput bits differ at qps {qps}"
        );
    }
}

/// Trains a small (but real) predictor on an arbitrary node geometry.
fn train_on(
    spec: NodeSpec,
    ls_idx: usize,
    be_idx: usize,
    seed: u64,
) -> (CoLocationEnv, PerfPowerPredictor) {
    let ls_ids = LsServiceId::all();
    let be_ids = BeAppId::all();
    let env = CoLocationEnv::new(
        spec,
        PowerModel::default(),
        ls_service(ls_ids[ls_idx % ls_ids.len()]),
        be_app(be_ids[be_idx % be_ids.len()]),
        InterferenceParams::none(),
        seed,
    );
    let d = Profiler::new(
        &env,
        ProfilerConfig {
            ls_samples_per_load: 40,
            ls_load_fractions: vec![0.2, 0.4, 0.6, 0.8],
            be_samples: 200,
            seed,
        },
    )
    .collect()
    .expect("profiling succeeds");
    let p = PerfPowerPredictor::train(
        &d,
        PredictorConfig::default(),
        env.static_power_w(),
        env.be().params.input_level as f64,
        env.ls().params.qos_target_ms,
    )
    .expect("training succeeds");
    (env, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence property, over random node geometries
    /// (core counts, DVFS tables, LLC sizes), workload pairs and loads:
    ///
    /// 1. slab cells agree with the live predictor bit for bit at slab
    ///    centers (feasibility and LS power);
    /// 2. the between-slab envelope is never optimistic — an
    ///    envelope-feasible cell is feasible at *both* bracketing
    ///    centers, and envelope power is never below either center's;
    /// 3. the pruned engine equals the envelope oracle at the probed
    ///    load and the live serial oracle at a slab center;
    /// 4. a one-bucket QPS walk on a stateful engine stays bit-identical
    ///    to the stateless full sweep.
    #[test]
    fn latticed_engine_equals_oracles_on_random_nodes_and_workloads(
        cores in 8u32..15,
        n_freqs in 6usize..9,
        ways in 8u32..13,
        base_centi in 100u32..140,
        step_centi in 5u32..20,
        ls_idx in 0usize..8,
        be_idx in 0usize..8,
        seed in 0u64..1_000,
        frac_pct in 15u32..80,
    ) {
        let spec = NodeSpec {
            total_cores: cores,
            freq_levels_ghz: (0..n_freqs)
                .map(|i| (base_centi as f64 + (i as f64) * step_centi as f64) / 100.0)
                .collect(),
            total_llc_ways: ways,
            llc_mb: 1.25 * ways as f64,
        };
        prop_assert!(spec.validate().is_ok());
        let (env, p) = train_on(spec.clone(), ls_idx, be_idx, seed);
        let params = SearchParams::default();
        let search = ConfigSearch::new(&p, spec.clone(), env.budget_w(), params);
        let qps = (frac_pct as f64 / 100.0) * env.ls().params.peak_qps;

        // (1) + (2): slab cells vs the live predictor at the probed
        // load's bracketing centers.
        let slabs = p.ls_slabs(&spec, params.power_load_headroom);
        let (k_lo, k_hi) = slabs.bracket(qps);
        let lo = p.ls_slab(&spec, &slabs, k_lo);
        let hi = p.ls_slab(&spec, &slabs, k_hi);
        for (slab, k) in [(&lo, k_lo), (&hi, k_hi)] {
            let center = slabs.center(k);
            let center_power = center * (1.0 + slabs.headroom());
            for c in 1..=spec.total_cores {
                for f in 0..spec.freq_level_count() {
                    let ghz = spec.freq_ghz(f);
                    for w in 1..=spec.total_llc_ways {
                        prop_assert_eq!(
                            slab.feasible(c, f, w),
                            p.ls_feasible(c, ghz, w, center),
                            "feasibility differs at bucket {} cell ({}, {}, {})", k, c, f, w
                        );
                        prop_assert_eq!(
                            slab.ls_power_w(c, f, w).to_bits(),
                            p.ls_power_w(c, ghz, w, center_power).to_bits(),
                            "LS power bits differ at bucket {} cell ({}, {}, {})", k, c, f, w
                        );
                    }
                }
            }
        }
        // (2) follows structurally (the envelope is AND / max of the two
        // slabs just verified); spot-check the composition anyway.
        for c in 1..=spec.total_cores {
            for w in 1..=spec.total_llc_ways {
                let f = spec.max_freq_level();
                let env_feasible = lo.feasible(c, f, w) && hi.feasible(c, f, w);
                if env_feasible {
                    prop_assert!(lo.feasible(c, f, w) && hi.feasible(c, f, w));
                }
                let env_power = lo.ls_power_w(c, f, w).max(hi.ls_power_w(c, f, w));
                prop_assert!(env_power >= lo.ls_power_w(c, f, w));
                prop_assert!(env_power >= hi.ls_power_w(c, f, w));
            }
        }

        // (3): engine vs envelope oracle at the probed load, and vs the
        // live oracle at a slab center.
        let full = search.exhaustive_latticed(qps);
        let pruned = search.pruned(qps);
        prop_assert_eq!(pruned.best, full.best);
        prop_assert_eq!(
            pruned.predicted_throughput.to_bits(),
            full.predicted_throughput.to_bits()
        );
        prop_assert!(pruned.stats.candidates <= full.stats.candidates);
        let center_qps = slabs.center(k_lo);
        let live = search.exhaustive_serial(center_qps);
        let at_center = search.pruned(center_qps);
        prop_assert_eq!(at_center.best, live.best);
        prop_assert_eq!(
            at_center.predicted_throughput.to_bits(),
            live.predicted_throughput.to_bits()
        );

        // (4): one-bucket walk, stateful vs stateless.
        let frontiers = FrontierCache::default();
        let warm = ConfigSearch::new(&p, spec.clone(), env.budget_w(), params)
            .with_frontiers(&frontiers);
        let q = slabs.quantum();
        let mut walk_qps = qps;
        for (i, delta) in [0.7, -1.0, 0.4, 1.0, -0.6].into_iter().enumerate() {
            walk_qps = (walk_qps + delta * q).max(0.0);
            let inc = warm.pruned(walk_qps);
            let fresh = search.pruned(walk_qps);
            prop_assert_eq!(inc.best, fresh.best, "walk step {} diverged", i);
            prop_assert_eq!(
                inc.predicted_throughput.to_bits(),
                fresh.predicted_throughput.to_bits()
            );
        }
    }
}
