//! Scenario-manifest contract tests.
//!
//! 1. Serialize → parse is the identity for arbitrary scenarios (the
//!    canonical TOML writer and the parser cannot drift apart).
//! 2. A manifest-driven run is **bit-identical** to the equivalent
//!    hand-built `RunBuilder` / `Fleet` run at a pinned seed — the
//!    property that makes manifest baselines trustworthy stand-ins for
//!    the legacy bins. (Full runs train predictors, so the bit-identity
//!    tests are release-only; CI's regression-gate job runs them.)

use proptest::prelude::*;
use sturgeon::prelude::*;
use sturgeon::scenario::{self, ControllerKind, SearchProbe};
use sturgeon_workloads::loadgen::FailoverRole;

const KINDS: [ControllerKind; 6] = [
    ControllerKind::Sturgeon,
    ControllerKind::SturgeonNoB,
    ControllerKind::Parties,
    ControllerKind::PartiesOrig,
    ControllerKind::Heracles,
    ControllerKind::Reserved,
];

fn any_load() -> impl Strategy<Value = LoadProfile> {
    let frac = 0.05f64..1.0;
    prop_oneof![
        frac.clone()
            .prop_map(|fraction| LoadProfile::Constant { fraction }),
        (frac.clone(), frac.clone(), 10.0f64..2000.0).prop_map(|(from, to, duration_s)| {
            LoadProfile::Ramp {
                from,
                to,
                duration_s,
            }
        }),
        (frac.clone(), frac.clone(), 10.0f64..2000.0).prop_map(|(low, high, period_s)| {
            LoadProfile::Triangle {
                low,
                high,
                period_s,
            }
        }),
        (frac.clone(), frac.clone(), 10.0f64..2000.0)
            .prop_map(|(low, high, day_s)| { LoadProfile::Diurnal { low, high, day_s } }),
        (frac.clone(), frac.clone(), 1.0f64..500.0).prop_map(|(before, after, at_s)| {
            LoadProfile::Step {
                before,
                after,
                at_s,
            }
        }),
        (prop::collection::vec(0.0f64..1.0, 1..12), 1.0f64..60.0)
            .prop_map(|(samples, dt_s)| LoadProfile::Trace { samples, dt_s }),
        (frac.clone(), 1.0f64..200.0, 1.0f64..3.0).prop_map(|(fraction, at_s, magnitude)| {
            LoadProfile::FlashCrowd {
                base: Box::new(LoadProfile::Constant { fraction }),
                at_s,
                ramp_s: at_s * 0.2,
                hold_s: at_s * 0.4,
                decay_s: at_s * 0.4,
                magnitude,
            }
        }),
        (frac, 1.0f64..200.0, 0.05f64..1.0, any::<bool>()).prop_map(
            |(fraction, at_s, takeover, failing)| LoadProfile::Failover {
                base: Box::new(LoadProfile::Constant { fraction }),
                at_s,
                outage_s: at_s,
                takeover,
                role: if failing {
                    FailoverRole::Failing
                } else {
                    FailoverRole::Survivor
                },
            }
        ),
    ]
}

fn any_faults() -> impl Strategy<Value = FaultPlan> {
    (0usize..6, 0u64..(1 << 53)).prop_map(|(preset, seed)| match preset {
        0 => FaultPlan::none(seed),
        1 => FaultPlan::telemetry_noise(seed, 0.15, 0.25),
        2 => FaultPlan::telemetry_dropout(seed, 0.1),
        3 => FaultPlan::actuation_faults(seed, 0.2),
        4 => FaultPlan::shocks(seed, 0.05),
        _ => FaultPlan::everything(seed),
    })
}

fn any_node_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            0usize..KINDS.len(),
            any::<bool>(),
            any::<bool>(),
            0u64..(1 << 53),
        ),
        (1u32..1000, 0usize..3, 0usize..6),
        any_load(),
        any_faults(),
        any::<bool>(),
        (
            prop::collection::vec(0.05f64..1.0, 1..4),
            1u32..4,
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (kind, pruned, hardened, seed),
                (intervals, ls, be),
                load,
                faults,
                policy_hardened,
                (fracs, reps, want_probe),
            )| {
                let kind = KINDS[kind];
                let probe = (want_probe && kind.is_sturgeon()).then_some(SearchProbe {
                    load_fractions: fracs,
                    reps,
                });
                Scenario {
                    name: format!("prop-{seed}"),
                    kind: ScenarioKind::Node,
                    seed,
                    intervals,
                    pair: ColocationPair::new(LsServiceId::all()[ls], BeAppId::all()[be]),
                    controller: ControllerSpec {
                        kind,
                        strategy: if pruned {
                            SearchStrategy::FrontierPruned
                        } else {
                            SearchStrategy::Heuristic
                        },
                        hardened,
                    },
                    load,
                    region_loads: Vec::new(),
                    faults,
                    policy: if policy_hardened {
                        ActuationPolicy::hardened()
                    } else {
                        ActuationPolicy::unhardened()
                    },
                    fleet: None,
                    budget: None,
                    placement: None,
                    scoring: None,
                    probe,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonical serialize → parse is the identity, and the canonical
    /// rendering is a fixpoint (render(parse(render(s))) == render(s)).
    #[test]
    fn manifest_roundtrip_is_identity(s in any_node_scenario()) {
        let text = s.to_toml_string();
        let parsed = Scenario::from_toml_str(&text)
            .map_err(|e| TestCaseError(format!("{e}\n--- manifest ---\n{text}")))?;
        prop_assert_eq!(&parsed, &s);
        prop_assert_eq!(parsed.to_toml_string(), text);
    }
}

/// The manifest path and the hand-built builder chain must produce the
/// same trajectory sample-for-sample and the same audit log — this is
/// the property the regression baselines rest on.
fn assert_bit_identical(manifest: &RunResult, hand: &RunResult) {
    assert_eq!(manifest.log.samples(), hand.log.samples());
    assert_eq!(manifest.audit.entries(), hand.audit.entries());
    assert_eq!(manifest.faults, hand.faults);
    assert_eq!(manifest.qos_rate, hand.qos_rate);
    assert_eq!(manifest.mean_be_throughput, hand.mean_be_throughput);
    assert_eq!(manifest.peak_power_w, hand.peak_power_w);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "trains a predictor; run with --release")]
fn node_manifest_matches_hand_built_run_fault_free() {
    let text = r#"
name = "identity"
seed = 7
intervals = 120

[workload]
ls = "memcached"
be = "raytrace"

[controller]
kind = "sturgeon"
search = "heuristic"

[load]
profile = "triangle"
low = 0.2
high = 0.8
period_s = 120
"#;
    let s = Scenario::from_toml_str(text).expect("manifest");
    let manifest_run = s.run_node_observed(None, None).expect("manifest run");

    // The equivalent run, written the way the legacy bins write it.
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        7,
    );
    let controller = SturgeonController::new(
        setup.train_default_predictor(),
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams {
            balancer_enabled: true,
            ..ControllerParams::default()
        },
    );
    let hand_run = setup
        .runner()
        .controller(controller)
        .load(LoadProfile::paper_fluctuating(120.0))
        .intervals(120)
        .go()
        .expect("hand-built run");
    assert_bit_identical(&manifest_run, &hand_run);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "trains a predictor; run with --release")]
fn node_manifest_matches_hand_built_run_with_fault_plan() {
    let text = r#"
name = "identity-faults"
seed = 42
intervals = 150

[workload]
ls = "memcached"
be = "raytrace"

[controller]
kind = "sturgeon"
hardened = true

[load]
profile = "triangle"
low = 0.2
high = 0.8
period_s = 60

[faults]
preset = "actuation"
rate = 0.10
seed = 1309
"#;
    let s = Scenario::from_toml_str(text).expect("manifest");
    let manifest_run = s.run_node_observed(None, None).expect("manifest run");

    // The equivalent run, written the way tab_robustness writes it.
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let controller = SturgeonController::new(
        setup.train_default_predictor(),
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::hardened(),
    );
    let hand_run = setup
        .runner()
        .controller(controller)
        .load(LoadProfile::paper_fluctuating(60.0))
        .intervals(150)
        .faults(FaultPlan::actuation_faults(1309, 0.10))
        .policy(ActuationPolicy::hardened())
        .go()
        .expect("hand-built run");
    assert!(manifest_run.faults.faults_seen > 0, "fault plan must fire");
    assert_bit_identical(&manifest_run, &hand_run);
}

fn assert_fleet_identical(manifest: &FleetResult, hand: &FleetResult) {
    assert_eq!(manifest.qos_rate, hand.qos_rate);
    assert_eq!(manifest.total_be_throughput, hand.total_be_throughput);
    assert_eq!(manifest.mean_fleet_power_w, hand.mean_fleet_power_w);
    assert_eq!(manifest.fleet_budget_w, hand.fleet_budget_w);
    assert_eq!(manifest.trainings, hand.trainings);
    assert_eq!(manifest.table_builds, hand.table_builds);
    assert_eq!(manifest.searches, hand.searches);
    assert_eq!(manifest.nodes.len(), hand.nodes.len());
    for (m, h) in manifest.nodes.iter().zip(&hand.nodes) {
        assert_eq!(m.node, h.node);
        assert_eq!(m.qos_rate, h.qos_rate);
        assert_eq!(m.mean_be_throughput, h.mean_be_throughput);
        assert_eq!(m.overload_fraction, h.overload_fraction);
        assert_eq!(m.mean_power_w, h.mean_power_w);
    }
}

fn fleet_identity_case(dispatch: &str, regions: usize) {
    let text = format!(
        r#"
name = "fleet-identity"
seed = 11
intervals = 40

[workload]
ls = "memcached"
be = "raytrace"

[controller]
kind = "sturgeon"
search = "pruned"

[load]
profile = "diurnal"
low = 0.2
high = 0.8
day_s = 40

[fleet]
nodes = 12
shards = 3
regions = {regions}
dispatch = "{dispatch}"
"#
    );
    let s = Scenario::from_toml_str(&text).expect("manifest");
    let outcome = s.run().expect("manifest fleet run");
    let manifest_result = outcome.fleet.expect("fleet result");

    // The equivalent fleet, written the way fleet_sim writes it.
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let params = FleetParams {
        shards: 3,
        regions,
        training: TrainingMode::Shared,
        policy: if dispatch == "latency" {
            DispatchPolicy::LatencyAware
        } else {
            DispatchPolicy::Even
        },
        controller: ControllerParams {
            search: SearchParams {
                strategy: SearchStrategy::FrontierPruned,
                ..SearchParams::default()
            },
            ..ControllerParams::default()
        },
        sampled_nodes: 0,
        traced_shard: None,
        budget: None,
        placement: None,
        scoring: None,
    };
    let mut fleet = Fleet::try_new(pair, 12, params, 11).expect("fleet");
    let profiles = vec![
        LoadProfile::Diurnal {
            low: 0.2,
            high: 0.8,
            day_s: 40.0,
        };
        regions
    ];
    let hand_result = fleet
        .run_regional(&profiles, 40)
        .expect("hand-built fleet run");
    assert_fleet_identical(&manifest_result, &hand_result);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "trains a predictor; run with --release")]
fn fleet_manifest_matches_hand_built_run_even_dispatch() {
    fleet_identity_case("even", 1);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "trains a predictor; run with --release")]
fn fleet_manifest_matches_hand_built_run_latency_dispatch() {
    fleet_identity_case("latency", 2);
}

/// The legacy CLI flag semantics and the manifest schema meet in the
/// shared helpers; spot-check that a flags-built scenario and the
/// equivalent manifest text lower to the same scenario value.
#[test]
fn cli_flags_and_manifest_agree() {
    let from_flags = Scenario {
        name: "cli".into(),
        kind: ScenarioKind::Node,
        seed: 5,
        intervals: 300,
        pair: ColocationPair::new(LsServiceId::Xapian, BeAppId::Ferret),
        controller: ControllerSpec {
            kind: ControllerKind::SturgeonNoB,
            strategy: SearchStrategy::FrontierPruned,
            hardened: false,
        },
        load: scenario::cli_load_profile("diurnal", 0.5, 300).expect("load"),
        region_loads: Vec::new(),
        faults: scenario::cli_fault_plan("telemetry", 5).expect("faults"),
        policy: ActuationPolicy::hardened(),
        fleet: None,
        budget: None,
        placement: None,
        scoring: None,
        probe: None,
    };
    let manifest = r#"
name = "cli"
seed = 5
intervals = 300

[workload]
ls = "xapian"
be = "ferret"

[controller]
kind = "sturgeon-nob"
search = "pruned"

[load]
profile = "diurnal"
low = 0.15
high = 0.5
day_s = 300

[faults]
telemetry_dropout_rate = 0.1
seed = 5
"#;
    assert_eq!(
        Scenario::from_toml_str(manifest).expect("manifest"),
        from_flags
    );
}
