//! Integration tests for the fault-injection subsystem and the hardened
//! controller stack: determinism, zero-fault fidelity, staleness handling,
//! safe-mode feasibility, and the headline actuator-fault resilience claim.

use sturgeon::controller::ResourceController;
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;
use sturgeon::report::{run_summary_json, telemetry_csv};
use sturgeon_workloads::env::Observation;

/// Reduced-size profiling so integration tests stay fast while covering
/// the full load range (same shape as integration_controller.rs).
fn fast_profiler() -> ProfilerConfig {
    ProfilerConfig {
        ls_samples_per_load: 160,
        ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
        be_samples: 1000,
        seed: 77,
    }
}

fn sturgeon_for(setup: &ExperimentSetup, params: ControllerParams) -> SturgeonController {
    let predictor = setup
        .train_predictor(fast_profiler(), PredictorConfig::default())
        .expect("training succeeds");
    SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        params,
    )
}

/// Four load cycles per run: every rise and fall forces reconfigurations,
/// which is when actuation faults actually bite.
fn cycling_load(duration_s: u32) -> LoadProfile {
    LoadProfile::paper_fluctuating((duration_s as f64 / 4.0).max(60.0))
}

#[test]
fn same_seed_gives_bit_identical_fault_runs() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let plan = FaultPlan::everything(1309);
    let load = cycling_load(160);
    let run = |setup: &ExperimentSetup| {
        setup
            .runner()
            .controller(sturgeon_for(setup, ControllerParams::hardened()))
            .load(load.clone())
            .intervals(160)
            .faults(plan)
            .go()
            .unwrap()
    };
    let a = run(&setup);
    let b = run(&setup);
    assert!(a.faults.faults_seen > 0, "plan injected nothing");
    assert_eq!(a.faults, b.faults, "fault sequence must be seed-determined");
    assert_eq!(
        telemetry_csv(&a.log),
        telemetry_csv(&b.log),
        "telemetry must be bit-identical across identical seeds"
    );
    assert_eq!(
        run_summary_json(&a),
        run_summary_json(&b),
        "final report must be bit-identical across identical seeds"
    );
    assert_eq!(a.audit.len(), b.audit.len());
}

#[test]
fn different_fault_seeds_diverge() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let load = cycling_load(160);
    let run = |seed: u64| {
        setup
            .runner()
            .controller(sturgeon_for(&setup, ControllerParams::hardened()))
            .load(load.clone())
            .intervals(160)
            .faults(FaultPlan::everything(seed))
            .go()
            .unwrap()
    };
    let a = run(1309);
    let b = run(2718);
    assert_ne!(
        a.faults, b.faults,
        "different seeds should draw different fault sequences"
    );
}

#[test]
fn zero_fault_plan_reproduces_fault_free_trajectory() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let load = cycling_load(200);
    let plan = FaultPlan::none(7);
    assert!(plan.is_zero());
    let clean = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::hardened()))
        .load(load.clone())
        .intervals(200)
        .go()
        .unwrap();
    let faulted = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::hardened()))
        .load(load)
        .intervals(200)
        .faults(plan)
        .go()
        .unwrap();
    assert_eq!(faulted.faults, FaultReport::default());
    assert_eq!(
        telemetry_csv(&clean.log),
        telemetry_csv(&faulted.log),
        "zero-fault run must be bit-identical to the fault-free harness"
    );
    assert_eq!(clean.qos_rate, faulted.qos_rate);
    assert_eq!(clean.overload_fraction, faulted.overload_fraction);
    assert_eq!(clean.audit.len(), faulted.audit.len());
}

/// A hand-built observation; bit-identical replays stand in for a frozen
/// telemetry collector.
fn obs_at(t_s: f64, qps: f64) -> Observation {
    Observation {
        t_s,
        qps,
        p95_ms: 4.0,
        in_target_fraction: 1.0,
        ls_utilization: 0.5,
        power_w: 80.0,
        be_throughput_norm: 0.5,
        be_ipc: 1.0,
        interference: 0.1,
    }
}

#[test]
fn stale_config_never_held_beyond_staleness_window() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let mut c = sturgeon_for(&setup, ControllerParams::hardened());
    let window = c.params().robust.staleness_window;
    let mut cfg = c.initial_config(setup.spec());
    cfg = c.decide(&obs_at(1.0, 12_000.0), cfg);
    let held = cfg;
    // Replay the same sample well past the window: within it the config is
    // held verbatim; from the window on, every decision is the safe config
    // — the controller never keeps acting on a configuration derived from
    // stale telemetry.
    for i in 1..=(window + 4) {
        cfg = c.decide(&obs_at(1.0 + i as f64, 12_000.0), cfg);
        if i < window {
            assert_eq!(cfg, held, "interval {i}: config must hold inside window");
        } else {
            assert_eq!(
                cfg,
                c.safe_config(12_000.0),
                "interval {i}: beyond the window only the safe config is allowed"
            );
        }
    }
    assert!(c.in_safe_mode());
    assert_eq!(c.safe_mode_entries(), 1);
    assert_eq!(c.stale_intervals(), u64::from(window) + 4);
}

#[test]
fn dropout_run_records_staleness_and_stays_consistent() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let r = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::hardened()))
        .load(cycling_load(240))
        .intervals(240)
        .faults(FaultPlan::telemetry_dropout(1309, 0.20))
        .go()
        .unwrap();
    assert!(r.faults.telemetry_dropouts > 0, "dropout plan never fired");
    assert!(
        r.faults.stale_intervals >= r.faults.telemetry_dropouts,
        "every replayed sample must be counted stale ({} < {})",
        r.faults.stale_intervals,
        r.faults.telemetry_dropouts
    );
    // The hardened policy re-syncs belief with the node every interval.
    assert_eq!(r.faults.divergence_intervals, 0);
    for s in r.log.samples() {
        assert!(s.config.validate(setup.spec()).is_ok());
    }
}

#[test]
fn safe_mode_config_is_power_feasible_across_pairs_and_loads() {
    for (ls, be, seed) in [
        (LsServiceId::Memcached, BeAppId::Raytrace, 42),
        (LsServiceId::Xapian, BeAppId::Fluidanimate, 8),
        (LsServiceId::ImgDnn, BeAppId::Ferret, 8),
    ] {
        let setup = ExperimentSetup::new(ColocationPair::new(ls, be), seed);
        let c = sturgeon_for(&setup, ControllerParams::hardened());
        let guarded = setup.budget_w() * (1.0 - c.params().search.power_guard);
        for frac in [0.05, 0.2, 0.5, 0.8, 1.0] {
            let qps = frac * setup.peak_qps();
            let cfg = c.safe_config(qps);
            assert!(cfg.validate(setup.spec()).is_ok());
            let p = c.predictor().total_power_w(&cfg, setup.spec(), qps);
            assert!(
                p <= guarded + 1e-9 || cfg.ls.freq_level == 0,
                "{ls:?}+{be:?} at {qps:.0} qps: predicted {p:.1} W > {guarded:.1} W"
            );
        }
    }
}

#[test]
fn hardened_qos_survives_actuator_faults_where_unhardened_degrades() {
    // The PR's acceptance criterion: with a 10% actuator-failure rate the
    // hardened stack stays within 5 QoS points of fault-free, while the
    // fire-and-forget path (no retries, no read-back) measurably degrades
    // — a latched stuck interface is never noticed, let alone cleared.
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let load = cycling_load(240);
    let plan = FaultPlan::actuation_faults(1309, 0.10);

    let baseline = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::hardened()))
        .load(load.clone())
        .intervals(240)
        .faults(FaultPlan::none(1309))
        .go()
        .unwrap();
    let hardened = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::hardened()))
        .load(load.clone())
        .intervals(240)
        .faults(plan)
        .go()
        .unwrap();
    let unhardened = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::default()))
        .load(load)
        .intervals(240)
        .faults(plan)
        .policy(ActuationPolicy::unhardened())
        .go()
        .unwrap();

    assert!(hardened.faults.faults_seen > 0);
    assert!(hardened.faults.retries > 0, "hardened policy never retried");
    let hardened_gap = baseline.qos_rate - hardened.qos_rate;
    let unhardened_gap = baseline.qos_rate - unhardened.qos_rate;
    assert!(
        hardened_gap <= 0.05,
        "hardened QoS {:.4} fell more than 5 points below fault-free {:.4}",
        hardened.qos_rate,
        baseline.qos_rate
    );
    assert!(
        unhardened_gap >= 0.10,
        "unhardened QoS {:.4} should measurably degrade vs fault-free {:.4}",
        unhardened.qos_rate,
        baseline.qos_rate
    );
    // Silent failures leave the unhardened belief desynchronized.
    assert!(unhardened.faults.divergence_intervals > 0);
    assert_eq!(hardened.faults.divergence_intervals, 0);
}

#[test]
fn fault_counters_surface_in_summary_json() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions),
        9,
    );
    let r = setup
        .runner()
        .controller(sturgeon_for(&setup, ControllerParams::hardened()))
        .load(cycling_load(160))
        .intervals(160)
        .faults(FaultPlan::everything(55))
        .go()
        .unwrap();
    let json: serde_json::Value =
        serde_json::from_str(&run_summary_json(&r)).expect("summary is valid JSON");
    let seen = json["faults_seen"].as_u64().expect("faults_seen present");
    assert_eq!(seen, r.faults.faults_seen);
    assert!(seen > 0);
    assert!(json["retries"].as_u64().is_some());
    assert!(json["safe_mode_entries"].as_u64().is_some());
}
