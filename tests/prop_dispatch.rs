//! Property-based tests over the dispatcher's weight invariants: for
//! every policy and any (finite, plausible) p95 history, the weights a
//! region hands its shards must be non-negative, sum to one, and — for
//! the LatencyAware policy — never spread further than the 2:1 bound
//! its bounded headroom target promises.

use proptest::prelude::*;
use sturgeon::dispatch::{DispatchPolicy, Dispatcher};

const QOS_TARGET_MS: f64 = 20.0;

/// Strategy for a plausible per-unit p95 history: values span healthy
/// (far under target), saturated (far over target), and edge cases.
fn p95_values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..200.0, n..n + 1)
}

fn check_weights(weights: &[f64]) -> Result<(), TestCaseError> {
    let sum: f64 = weights.iter().sum();
    prop_assert!((sum - 1.0).abs() < 1e-9, "weights must sum to 1, got {sum}");
    for &w in weights {
        prop_assert!(w >= 0.0, "negative weight {w}");
        prop_assert!(w.is_finite(), "non-finite weight {w}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn even_weights_are_uniform_and_normalized(
        n in 1usize..64,
        intervals in 1usize..8,
    ) {
        let mut d = Dispatcher::try_new(DispatchPolicy::Even, n, QOS_TARGET_MS)
            .expect("valid setup");
        let p95 = vec![0.0; n];
        for _ in 0..intervals {
            let w = d.fill_weights(&p95).to_vec();
            check_weights(&w)?;
            for &x in &w {
                prop_assert!((x - 1.0 / n as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_weights_track_the_requested_ratios(
        raw in prop::collection::vec(0.0f64..10.0, 1..32),
    ) {
        // At least one weight must be positive for a valid setup.
        let mut raw = raw;
        raw[0] += 1.0;
        let n = raw.len();
        let mut d = Dispatcher::try_new(
            DispatchPolicy::Weighted(raw.clone()),
            n,
            QOS_TARGET_MS,
        )
        .expect("valid setup");
        let w = d.fill_weights(&vec![0.0; n]).to_vec();
        check_weights(&w)?;
        let total: f64 = raw.iter().sum();
        for (&got, &want) in w.iter().zip(&raw) {
            prop_assert!((got - want / total).abs() < 1e-9);
        }
    }

    #[test]
    fn latency_aware_stays_normalized_and_bounded(n in 2usize..32) {
        let mut d = Dispatcher::try_new(DispatchPolicy::LatencyAware, n, QOS_TARGET_MS)
            .expect("valid setup");
        let mut runner_p95 = vec![0.0; n];
        for step in 0..32usize {
            // Deterministic but varied pattern: mix saturated and idle
            // units, shifting each interval.
            for (i, slot) in runner_p95.iter_mut().enumerate() {
                *slot = ((i + step) % n) as f64 * 200.0 / n as f64;
            }
            let w = d.fill_weights(&runner_p95).to_vec();
            check_weights(&w)?;
            let max = w.iter().cloned().fold(f64::MIN, f64::max);
            let min = w.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(
                max / min <= 2.0 + 1e-9,
                "spread {} exceeds the 2:1 bound", max / min
            );
        }
    }

    #[test]
    fn latency_aware_bounded_after_arbitrary_histories(
        p95s in prop::collection::vec(p95_values(8), 1..16),
    ) {
        let mut d = Dispatcher::try_new(DispatchPolicy::LatencyAware, 8, QOS_TARGET_MS)
            .expect("valid setup");
        for interval in &p95s {
            let w = d.fill_weights(interval).to_vec();
            check_weights(&w)?;
            let max = w.iter().cloned().fold(f64::MIN, f64::max);
            let min = w.iter().cloned().fold(f64::MAX, f64::min);
            prop_assert!(
                max / min <= 2.0 + 1e-9,
                "spread {} exceeds the 2:1 bound after {} intervals",
                max / min,
                p95s.len()
            );
        }
    }

    #[test]
    fn latency_aware_shifts_load_toward_headroom(
        slow_p95 in 25.0f64..200.0,
        fast_p95 in 0.0f64..10.0,
    ) {
        let mut d = Dispatcher::try_new(DispatchPolicy::LatencyAware, 2, QOS_TARGET_MS)
            .expect("valid setup");
        let mut w = Vec::new();
        for _ in 0..100 {
            w = d.fill_weights(&[slow_p95, fast_p95]).to_vec();
        }
        check_weights(&w)?;
        prop_assert!(
            w[1] > w[0],
            "unit with headroom must receive more load: {w:?}"
        );
    }
}

#[test]
fn dispatcher_rejects_invalid_setups() {
    assert!(Dispatcher::try_new(DispatchPolicy::Even, 0, QOS_TARGET_MS).is_err());
    assert!(
        Dispatcher::try_new(DispatchPolicy::Weighted(vec![1.0]), 2, QOS_TARGET_MS).is_err(),
        "length mismatch"
    );
    assert!(
        Dispatcher::try_new(DispatchPolicy::Weighted(vec![1.0, -1.0]), 2, QOS_TARGET_MS).is_err(),
        "negative weight"
    );
    assert!(
        Dispatcher::try_new(DispatchPolicy::Weighted(vec![0.0, 0.0]), 2, QOS_TARGET_MS).is_err(),
        "all-zero weights"
    );
}
