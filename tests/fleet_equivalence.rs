//! Pinned-seed equivalence between the fleet-scale control plane and
//! the reference [`Cluster`]: a [`Fleet`] built with one node per shard
//! in [`TrainingMode::PerNode`] runs the same per-node training, the
//! same dispatch arithmetic and the same controller trajectory as
//! today's `Cluster`, so every aggregate must match **bit for bit** —
//! not approximately. This is the contract that lets the sharded /
//! shared-artifact fast paths be trusted: they are refactorings of a
//! loop whose semantics are pinned here.

use sturgeon::cluster::{Cluster, ClusterResult};
use sturgeon::dispatch::DispatchPolicy;
use sturgeon::fleet::{Fleet, FleetBudget, FleetParams, FleetResult, TrainingMode};
use sturgeon_workloads::catalog::{BeAppId, LsServiceId};
use sturgeon_workloads::loadgen::LoadProfile;

fn pair() -> sturgeon::experiment::ColocationPair {
    sturgeon::experiment::ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions)
}

fn assert_bit_identical(cluster: &ClusterResult, fleet: &FleetResult) {
    assert_eq!(cluster.nodes.len(), fleet.nodes.len());
    for (c, f) in cluster.nodes.iter().zip(&fleet.nodes) {
        assert_eq!(c.node, f.node);
        assert_eq!(
            c.qos_rate.to_bits(),
            f.qos_rate.to_bits(),
            "node {} qos: {} vs {}",
            c.node,
            c.qos_rate,
            f.qos_rate
        );
        assert_eq!(
            c.mean_be_throughput.to_bits(),
            f.mean_be_throughput.to_bits(),
            "node {} throughput: {} vs {}",
            c.node,
            c.mean_be_throughput,
            f.mean_be_throughput
        );
        assert_eq!(
            c.overload_fraction.to_bits(),
            f.overload_fraction.to_bits(),
            "node {} overload",
            c.node
        );
        assert_eq!(
            c.mean_power_w.to_bits(),
            f.mean_power_w.to_bits(),
            "node {} power: {} vs {}",
            c.node,
            c.mean_power_w,
            f.mean_power_w
        );
    }
    assert_eq!(
        cluster.qos_rate.to_bits(),
        fleet.qos_rate.to_bits(),
        "fleet qos: {} vs {}",
        cluster.qos_rate,
        fleet.qos_rate
    );
    assert_eq!(
        cluster.total_be_throughput.to_bits(),
        fleet.total_be_throughput.to_bits()
    );
    assert_eq!(
        cluster.mean_cluster_power_w.to_bits(),
        fleet.mean_fleet_power_w.to_bits()
    );
    assert_eq!(
        cluster.cluster_budget_w.to_bits(),
        fleet.fleet_budget_w.to_bits()
    );
    assert_eq!(
        cluster.fault_counters.stale_intervals,
        fleet.fault_counters.stale_intervals
    );
    assert_eq!(
        cluster.fault_counters.safe_mode_entries,
        fleet.fault_counters.safe_mode_entries
    );
    assert_eq!(
        cluster.fault_counters.balancer_retry_rounds,
        fleet.fault_counters.balancer_retry_rounds
    );
}

fn fleet_params(n: usize, policy: DispatchPolicy) -> FleetParams {
    FleetParams {
        shards: n, // one node per shard: the Cluster control loop exactly
        training: TrainingMode::PerNode,
        policy,
        ..FleetParams::default()
    }
}

#[test]
fn per_node_fleet_matches_cluster_even_dispatch() {
    const SEED: u64 = 42;
    const NODES: usize = 2;
    let profile = LoadProfile::paper_fluctuating(60.0);
    let mut cluster = Cluster::new(pair(), NODES, DispatchPolicy::Even, SEED);
    let cr = cluster.run(profile.clone(), 50);
    let mut fleet = Fleet::new(
        pair(),
        NODES,
        fleet_params(NODES, DispatchPolicy::Even),
        SEED,
    );
    let fr = fleet.run(profile, 50);
    assert_eq!(fr.trainings, NODES as u64, "per-node mode trains per shard");
    assert_bit_identical(&cr, &fr);
}

#[test]
fn per_node_fleet_matches_cluster_latency_aware_dispatch() {
    const SEED: u64 = 7;
    const NODES: usize = 3;
    // LatencyAware couples the nodes through the dispatcher's EWMA
    // state, so this also pins the Fleet's shard-summary plumbing
    // (shard mean of one node == the node) bit for bit.
    let profile = LoadProfile::paper_fluctuating(80.0);
    let mut cluster = Cluster::new(pair(), NODES, DispatchPolicy::LatencyAware, SEED);
    let cr = cluster.run(profile.clone(), 60);
    let mut fleet = Fleet::new(
        pair(),
        NODES,
        fleet_params(NODES, DispatchPolicy::LatencyAware),
        SEED,
    );
    let fr = fleet.run(profile, 60);
    assert_bit_identical(&cr, &fr);
}

#[test]
fn shared_training_stays_on_the_same_trajectory() {
    // Shared training is bit-identical to per-node training because the
    // profiler runs interference-free with its own seed: the predictor
    // a node trains is independent of the node seed. A shared-predictor
    // fleet must therefore match the Cluster too.
    const SEED: u64 = 11;
    const NODES: usize = 2;
    let profile = LoadProfile::Constant { fraction: 0.5 };
    let mut cluster = Cluster::new(pair(), NODES, DispatchPolicy::Even, SEED);
    let cr = cluster.run(profile.clone(), 40);
    let params = FleetParams {
        shards: NODES,
        training: TrainingMode::Shared,
        ..FleetParams::default()
    };
    let mut fleet = Fleet::new(pair(), NODES, params, SEED);
    let fr = fleet.run(profile, 40);
    assert_eq!(fr.trainings, 1, "shared mode trains once");
    assert_bit_identical(&cr, &fr);
}

#[test]
fn event_free_budget_tree_is_inert() {
    // A budget tree with no cap events never binds: every reclamation
    // input stays at nominal, so the per-node budgets the controllers
    // see are untouched and the trajectory is bit-identical to a fleet
    // built without a tree. This is the contract that lets `[budget]`
    // default into manifests without perturbing committed baselines.
    const SEED: u64 = 23;
    const NODES: usize = 2;
    let profile = LoadProfile::paper_fluctuating(60.0);
    let mut cluster = Cluster::new(pair(), NODES, DispatchPolicy::Even, SEED);
    let cr = cluster.run(profile.clone(), 50);
    let params = FleetParams {
        budget: Some(FleetBudget::default()),
        ..fleet_params(NODES, DispatchPolicy::Even)
    };
    let mut fleet = Fleet::new(pair(), NODES, params, SEED);
    let fr = fleet.run(profile, 50);
    assert_eq!(fr.budget_reclaims, 0, "no events, no reclamation");
    assert_bit_identical(&cr, &fr);
}

#[test]
fn per_node_safe_mode_entries_are_surfaced() {
    // Fleet node rows must carry their shard controller's safe-mode
    // count, matching both the Cluster rows and the aggregate counter.
    const SEED: u64 = 42;
    const NODES: usize = 2;
    let profile = LoadProfile::paper_fluctuating(60.0);
    let mut cluster = Cluster::new(pair(), NODES, DispatchPolicy::Even, SEED);
    let cr = cluster.run(profile.clone(), 50);
    let mut fleet = Fleet::new(
        pair(),
        NODES,
        fleet_params(NODES, DispatchPolicy::Even),
        SEED,
    );
    let fr = fleet.run(profile, 50);
    for (c, f) in cr.nodes.iter().zip(&fr.nodes) {
        assert_eq!(c.safe_mode_entries, f.safe_mode_entries, "node {}", c.node);
    }
    assert_eq!(
        fr.nodes.iter().map(|n| n.safe_mode_entries).sum::<u64>(),
        fr.fault_counters.safe_mode_entries,
        "one node per shard: per-node counts sum to the aggregate"
    );
}
