//! Integration tests for the query-level discrete-event simulator: the
//! analytic latency surface and the measured one must agree where it
//! matters, and Sturgeon must still deliver its guarantees when driven by
//! *sampled* telemetry instead of closed-form observations.

use sturgeon::controller::ResourceController;
use sturgeon::prelude::*;
use sturgeon_simnode::{IntervalSample, SimActuators, TelemetryLog};
use sturgeon_workloads::catalog::{ls_service, LsServiceId as WLsId};
use sturgeon_workloads::querysim::{MeasuredColocation, QueryLevelSim};

/// Analytic Erlang-C p95 vs event-simulated p95 across the load range:
/// same hockey-stick, same order of magnitude everywhere below the cliff.
#[test]
fn measured_latency_tracks_analytic_surface() {
    let ls = ls_service(WLsId::Memcached);
    for (cores, qps) in [
        (8u32, 8_000.0),
        (8, 16_000.0),
        (12, 30_000.0),
        (16, 45_000.0),
    ] {
        let analytic = ls.latency(cores, 2.2, 10, qps, 1.0);
        let service_ms = ls.service_time_ms(2.2, 10, 1.0);
        let mut sim = QueryLevelSim::new(ls.clone(), 101);
        let mut vals = Vec::new();
        for _ in 0..10 {
            vals.push(sim.simulate_interval(cores, service_ms, qps, 1.0).p95_ms);
        }
        let measured = vals[2..].iter().sum::<f64>() / 8.0;
        assert!(
            measured < 3.0 * analytic.p95_ms + 0.5 && measured > 0.3 * analytic.p95_ms - 0.5,
            "cores={cores} qps={qps}: measured {measured:.2} vs analytic {:.2}",
            analytic.p95_ms
        );
    }
}

/// The latency cliff appears at the same place in both backends: below
/// saturation both meet the target, above it both blow through.
#[test]
fn cliff_location_agrees() {
    let ls = ls_service(WLsId::Memcached);
    let service_ms = ls.service_time_ms(1.6, 6, 1.0);
    let per_core = 1000.0 / service_ms;
    let cores = 4u32;
    let capacity = cores as f64 * per_core;

    let mut sim = QueryLevelSim::new(ls.clone(), 7);
    // Comfortably below capacity.
    let mut below = Vec::new();
    for _ in 0..8 {
        below.push(
            sim.simulate_interval(cores, service_ms, 0.8 * capacity, 1.0)
                .p95_ms,
        );
    }
    let below_p95 = below[2..].iter().sum::<f64>() / 6.0;
    assert!(below_p95 < ls.params.qos_target_ms, "below: {below_p95}");

    // Above capacity the backlog compounds.
    let mut sim = QueryLevelSim::new(ls.clone(), 7);
    let mut last = 0.0;
    for _ in 0..6 {
        last = sim
            .simulate_interval(cores, service_ms, 1.15 * capacity, 1.0)
            .p95_ms;
    }
    assert!(last > ls.params.qos_target_ms, "above: {last}");
}

/// End-to-end: run the full Sturgeon controller against the measured
/// (query-sampled) environment. The guarantees must survive telemetry
/// noise.
#[test]
fn sturgeon_holds_up_under_measured_telemetry() {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    let mut controller = SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::default(),
    );

    let mut env = MeasuredColocation::new(setup.env().clone(), 4242);
    let actuators = SimActuators::new(setup.spec().clone());
    let mut log = TelemetryLog::new();
    let load = LoadProfile::paper_fluctuating(300.0);
    let mut config = controller.initial_config(setup.spec());
    actuators.apply(config).expect("valid initial config");

    for t in 0..300u32 {
        let qps = load.qps_at(t as f64, setup.peak_qps());
        let obs = env.step(&actuators.config(), qps);
        actuators.push_power(obs.power_w);
        log.push(IntervalSample {
            t_s: obs.t_s,
            qps: obs.qps,
            p95_ms: obs.p95_ms,
            in_target_fraction: obs.in_target_fraction,
            power_w: obs.power_w,
            be_throughput_norm: obs.be_throughput_norm,
            config: actuators.config(),
        });
        let next = controller.decide(&obs, config);
        if next != config {
            actuators.apply(next).expect("valid config");
            config = next;
        }
    }

    let qos = log.qos_guarantee_rate();
    let overload = log.overload_fraction(setup.budget_w());
    let tput = log.mean_be_throughput();
    assert!(qos > 0.93, "QoS under measured telemetry: {qos}");
    assert!(overload < 0.02, "overload fraction {overload}");
    assert!(tput > 0.35, "throughput {tput}");
}

/// Measured telemetry is reproducible per seed.
#[test]
fn measured_env_deterministic() {
    let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Ferret);
    let setup = ExperimentSetup::new(pair, 3);
    let cfg =
        sturgeon_simnode::PairConfig::new(Allocation::new(6, 7, 8), Allocation::new(14, 5, 12));
    let run = |seed| {
        let mut env = MeasuredColocation::new(setup.env().clone(), seed);
        (0..20)
            .map(|_| env.step(&cfg, 1_200.0).p95_ms)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10), "different seeds must differ");
}
