//! Integration tests for the offline phase: profiling, model training,
//! model-family evaluation (Figs. 6/7 shapes) and the configuration
//! search built on top of the trained predictor.

use sturgeon::predictor::evaluation::{lasso_select_features, score_families};
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

fn profiler() -> ProfilerConfig {
    ProfilerConfig {
        ls_samples_per_load: 100,
        ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
        be_samples: 600,
        seed: 99,
    }
}

#[test]
fn family_ranking_matches_paper_picks() {
    // §V-C: DT classification suits the LS QoS model; KNN regression
    // suits the power models. Check the ranking on two different pairs.
    for (ls, be) in [
        (LsServiceId::Memcached, BeAppId::Raytrace),
        (LsServiceId::Xapian, BeAppId::Ferret),
    ] {
        let setup = ExperimentSetup::new(ColocationPair::new(ls, be), 3);
        let datasets = setup.profile(profiler()).expect("profiling succeeds");
        let scores = score_families(&datasets, 5).expect("scoring succeeds");

        let dt = scores
            .iter()
            .find(|s| s.kind == ModelKind::DecisionTree)
            .expect("DT present");
        assert!(
            dt.ls_qos_accuracy > 0.92,
            "{}: DT accuracy {}",
            ls.name(),
            dt.ls_qos_accuracy
        );

        let knn = scores
            .iter()
            .find(|s| s.kind == ModelKind::Knn)
            .expect("KNN present");
        assert!(
            knn.ls_power_r2 > 0.95,
            "KNN LS power R² {}",
            knn.ls_power_r2
        );
        assert!(
            knn.be_power_r2 > 0.95,
            "KNN BE power R² {}",
            knn.be_power_r2
        );
        assert!(knn.be_perf_r2 > 0.9, "KNN BE perf R² {}", knn.be_perf_r2);

        // Linear regression cannot capture the f³ power law or Amdahl
        // saturation as well as the instance-based families.
        let lr = scores
            .iter()
            .find(|s| s.kind == ModelKind::Lr)
            .expect("LR present");
        assert!(
            knn.be_perf_r2 > lr.be_perf_r2,
            "KNN ({}) should beat LR ({}) on BE perf",
            knn.be_perf_r2,
            lr.be_perf_r2
        );
    }
}

#[test]
fn lasso_selects_resource_features_for_power() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Fluidanimate),
        3,
    );
    let datasets = setup.profile(profiler()).expect("profiling succeeds");
    let kept = lasso_select_features(&datasets.be_power, 0.01).expect("lasso fits");
    assert!(kept.contains(&1), "cores must survive: {kept:?}");
    assert!(kept.contains(&2), "frequency must survive: {kept:?}");
}

#[test]
fn search_results_feasible_across_pairs_and_loads() {
    for (ls, be) in [
        (LsServiceId::Memcached, BeAppId::Blackscholes),
        (LsServiceId::Xapian, BeAppId::Facesim),
        (LsServiceId::ImgDnn, BeAppId::Swaptions),
    ] {
        let setup = ExperimentSetup::new(ColocationPair::new(ls, be), 7);
        let predictor = setup
            .train_predictor(profiler(), PredictorConfig::default())
            .expect("training succeeds");
        let search = ConfigSearch::new(
            &predictor,
            setup.spec().clone(),
            setup.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.2, 0.4, 0.6] {
            let qps = frac * setup.peak_qps();
            let out = search.best_config(qps);
            let cfg = out
                .best
                .unwrap_or_else(|| panic!("{}: no config at {:.0}% load", ls.name(), frac * 100.0));
            assert!(cfg.validate(setup.spec()).is_ok());
            // The ground truth must agree the predicted config is safe on
            // power (the QoS side is allowed small model error; the
            // balancer owns that residual online).
            let truth_power = setup.env().total_power(&cfg, qps);
            assert!(
                truth_power <= 1.02 * setup.budget_w(),
                "{} at {:.0}%: {cfg} draws {truth_power:.1} W vs budget {:.1} W",
                ls.name(),
                frac * 100.0,
                setup.budget_w()
            );
        }
    }
}

#[test]
fn search_quality_close_to_exhaustive_oracle() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        9,
    );
    let predictor = setup
        .train_predictor(profiler(), PredictorConfig::default())
        .expect("training succeeds");
    let search = ConfigSearch::new(
        &predictor,
        setup.spec().clone(),
        setup.budget_w(),
        SearchParams::default(),
    );
    let qps = 0.3 * setup.peak_qps();
    let fast = search.best_config(qps);
    let oracle = search.exhaustive(qps);
    assert!(
        fast.predicted_throughput >= 0.85 * oracle.predicted_throughput,
        "fast {} vs oracle {}",
        fast.predicted_throughput,
        oracle.predicted_throughput
    );
    assert!(
        oracle.stats.model_calls > 10 * fast.stats.model_calls,
        "oracle {} vs fast {} model calls",
        oracle.stats.model_calls,
        fast.stats.model_calls
    );
}

#[test]
fn cache_preserves_search_results_exactly() {
    // The memo cache must be a pure performance optimization: with the
    // default bit-exact keys, both the fast path and the exhaustive
    // oracle return identical configurations whether the cache is on
    // or off, and the query accounting (model_calls) is unchanged.
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Blackscholes),
        17,
    );
    let predictor = setup
        .train_predictor(profiler(), PredictorConfig::default())
        .expect("training succeeds");
    let search = ConfigSearch::new(
        &predictor,
        setup.spec().clone(),
        setup.budget_w(),
        SearchParams::default(),
    );
    for frac in [0.2, 0.45, 0.7] {
        let qps = frac * setup.peak_qps();

        predictor.set_caching(true);
        let fast_cached = search.best_config(qps);
        let full_cached = search.exhaustive(qps);
        assert!(
            fast_cached.stats.cache_hits + fast_cached.stats.cache_misses > 0,
            "cache enabled but never consulted at {:.0}% load",
            frac * 100.0
        );

        predictor.set_caching(false);
        let fast_raw = search.best_config(qps);
        let full_raw = search.exhaustive(qps);
        assert_eq!(
            fast_raw.stats.cache_hits + fast_raw.stats.cache_misses,
            0,
            "cache disabled but still consulted"
        );

        assert_eq!(
            fast_cached.best,
            fast_raw.best,
            "fast path diverged with cache at {:.0}% load",
            frac * 100.0
        );
        assert_eq!(
            full_cached.best,
            full_raw.best,
            "exhaustive oracle diverged with cache at {:.0}% load",
            frac * 100.0
        );
        assert!((fast_cached.predicted_throughput - fast_raw.predicted_throughput).abs() < 1e-12);
        assert!((full_cached.predicted_throughput - full_raw.predicted_throughput).abs() < 1e-12);
        // `model_calls` counts queries, not executions: identical either way.
        assert_eq!(fast_cached.stats.model_calls, fast_raw.stats.model_calls);
        assert_eq!(full_cached.stats.model_calls, full_raw.stats.model_calls);
        assert_eq!(full_cached.stats.candidates, full_raw.stats.candidates);
    }
    predictor.set_caching(true);
}

#[test]
fn predictor_conservative_beyond_profiled_domain() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Xapian, BeAppId::Raytrace),
        11,
    );
    let predictor = setup
        .train_predictor(profiler(), PredictorConfig::default())
        .expect("training succeeds");
    // Way beyond anything profiled: must refuse rather than extrapolate.
    assert!(!predictor.ls_feasible(19, 2.2, 19, 10.0 * setup.peak_qps()));
}

#[test]
fn power_predictions_track_ground_truth() {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Fluidanimate),
        13,
    );
    let predictor = setup
        .train_predictor(profiler(), PredictorConfig::default())
        .expect("training succeeds");
    let spec = setup.spec().clone();
    let mut worst: f64 = 0.0;
    for cores in [4u32, 8, 12, 16] {
        for level in [0usize, 4, 9] {
            let f = spec.freq_ghz(level);
            let truth = setup.env().be_partition_power(cores, f);
            // Strip the conservative margin before comparing to truth.
            let margin = 1.0 + predictor.config().power_margin;
            let pred = predictor.be_power_w(cores, f, 10) / margin;
            worst = worst.max(((pred - truth) / truth).abs());
        }
    }
    assert!(worst < 0.12, "worst relative power error {worst}");
}
