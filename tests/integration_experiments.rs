//! Paper-shape regression tests: reduced-scale versions of the assertions
//! the figure binaries print. These are the guardrails that keep the
//! reproduction honest — if a refactor breaks a paper shape, these fail.

use sturgeon::prelude::*;
use sturgeon_bench::{evaluate_pair, mean};
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig, PowerModel};
use sturgeon_workloads::catalog::{all_pairs, be_app, ls_service};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

/// Fig. 2 shape: every pair overloads the budget by a single-digit to
/// low-double-digit percentage when co-location ignores power.
#[test]
fn fig2_shape_all_pairs_overload_in_band() {
    let spec = NodeSpec::xeon_e5_2630_v4();
    for (ls_id, be_id) in all_pairs() {
        let env = CoLocationEnv::new(
            spec.clone(),
            PowerModel::default(),
            ls_service(ls_id),
            be_app(be_id),
            InterferenceParams::none(),
            0,
        );
        let ls = env.ls().clone();
        let qps = 0.2 * ls.params.peak_qps;
        let min_cores = (1..=19)
            .find(|&c| ls.meets_qos(c, spec.freq_ghz(5), 6, qps))
            .expect("servable");
        let cfg = PairConfig::new(
            Allocation::new(min_cores, 5, 6),
            Allocation::new(20 - min_cores, 9, 14),
        );
        let over = env.total_power(&cfg, qps) / env.budget_w() - 1.0;
        assert!(
            (0.015..0.14).contains(&over),
            "{}+{}: overload {:.1}% outside the paper band",
            ls_id.name(),
            be_id.name(),
            over * 100.0
        );
    }
}

/// Fig. 3 shape: both core-preferring and frequency-preferring feasible
/// configurations exist among the memcached co-locations, and ferret
/// prefers cores at 35% load.
#[test]
fn fig3_shape_preferences_are_heterogeneous() {
    let spec = NodeSpec::xeon_e5_2630_v4();
    let ls = ls_service(sturgeon_workloads::catalog::LsServiceId::Memcached);
    let qps = 0.35 * ls.params.peak_qps;

    let best_for = |be_id| {
        let env = CoLocationEnv::new(
            spec.clone(),
            PowerModel::default(),
            ls.clone(),
            be_app(be_id),
            InterferenceParams::none(),
            0,
        );
        // Enumerate feasible candidates: minimal LS per core count, BE at
        // max frequency within budget.
        let mut best: Option<(PairConfig, f64)> = None;
        let mut most_cores: Option<(PairConfig, f64)> = None;
        for c1 in 1..20u32 {
            let mut found = None;
            'o: for f1 in 0..10usize {
                for l1 in 1..20u32 {
                    if ls.meets_qos(c1, spec.freq_ghz(f1), l1, qps) {
                        found = Some((f1, l1));
                        break 'o;
                    }
                }
            }
            let Some((f1, l1)) = found else { continue };
            let (c2, l2) = (20 - c1, 20 - l1);
            let Some(f2) = (0..10usize).rev().find(|&f2| {
                let cfg = PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
                env.total_power(&cfg, qps) <= env.budget_w()
            }) else {
                continue;
            };
            let cfg = PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
            let t = env.be().normalized_throughput(c2, spec.freq_ghz(f2), l2);
            if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                best = Some((cfg, t));
            }
            if most_cores
                .as_ref()
                .is_none_or(|(mc, _)| cfg.be.cores > mc.be.cores)
            {
                most_cores = Some((cfg, t));
            }
        }
        (best.expect("feasible"), most_cores.expect("feasible"))
    };

    // Ferret must be core-preferring: its best config is the most-cores one.
    let (fe_best, fe_most_cores) = best_for(sturgeon_workloads::catalog::BeAppId::Ferret);
    assert_eq!(
        fe_best.0.be.cores, fe_most_cores.0.be.cores,
        "ferret should prefer cores at 35% load"
    );

    // Blackscholes must NOT be core-preferring at this load: its optimum
    // trades cores for frequency.
    let (bs_best, bs_most_cores) = best_for(sturgeon_workloads::catalog::BeAppId::Blackscholes);
    assert!(
        bs_best.0.be.cores < bs_most_cores.0.be.cores,
        "blackscholes should trade cores for frequency at 35% load"
    );
}

/// Figs. 9/10 shape at reduced scale: on three representative pairs,
/// Sturgeon holds QoS ≥ 95% with zero overload, beats PARTIES on BE
/// throughput, and the NoB ablation pays ≤ modest throughput for its QoS
/// violations.
#[test]
fn fig9_fig10_shape_reduced() {
    let pairs = [
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        ColocationPair::new(LsServiceId::Xapian, BeAppId::Fluidanimate),
        ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Ferret),
    ];
    let mut s_tput = Vec::new();
    let mut p_tput = Vec::new();
    for pair in pairs {
        let eval = evaluate_pair(pair, 42, 300);
        // 300 s runs sweep the load twice as fast as the paper's 600 s
        // runs, so convergence transients cost ~0.5% QoS; the full-length
        // fig9 report shows ≥ 95% for all pairs.
        assert!(
            eval.sturgeon.qos_rate >= 0.94,
            "{}: Sturgeon QoS {}",
            pair.label(),
            eval.sturgeon.qos_rate
        );
        assert!(
            !eval.sturgeon.suffers_overload(),
            "{}: Sturgeon overloads",
            pair.label()
        );
        assert!(
            eval.parties.qos_rate >= 0.93,
            "{}: PARTIES QoS {}",
            pair.label(),
            eval.parties.qos_rate
        );
        s_tput.push(eval.sturgeon.mean_be_throughput);
        p_tput.push(eval.parties.mean_be_throughput);
    }
    let gain = mean(&s_tput) / mean(&p_tput) - 1.0;
    assert!(
        gain > 0.05,
        "Sturgeon should clearly beat PARTIES; got {:+.1}%",
        gain * 100.0
    );
}

/// §VII-C shape: the interference-heavy pairs lose their QoS guarantee
/// when the balancer is disabled.
#[test]
fn nob_violates_on_interference_heavy_pair() {
    let pair = ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Fluidanimate);
    let eval = evaluate_pair(pair, 42, 300);
    assert!(
        eval.nob.qos_rate < 0.95,
        "NoB unexpectedly met QoS: {}",
        eval.nob.qos_rate
    );
    // This is the heaviest-interference pair and a fast-sweep run: the
    // absolute level sits a little under the 600 s report's 95.6%; what
    // this test guards is the balancer's *gap* over NoB.
    assert!(eval.sturgeon.qos_rate >= 0.92, "{}", eval.sturgeon.qos_rate);
    assert!(eval.sturgeon.qos_rate > eval.nob.qos_rate + 0.05);
}

/// Determinism: the full three-system evaluation of a pair reproduces
/// bit-for-bit under the same seed.
#[test]
fn evaluation_is_deterministic() {
    let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions);
    let a = evaluate_pair(pair, 1234, 120);
    let b = evaluate_pair(pair, 1234, 120);
    assert_eq!(a.sturgeon.qos_rate, b.sturgeon.qos_rate);
    assert_eq!(a.sturgeon.mean_be_throughput, b.sturgeon.mean_be_throughput);
    assert_eq!(a.parties.qos_rate, b.parties.qos_rate);
    assert_eq!(a.nob.peak_power_w, b.nob.peak_power_w);
}
