//! Golden-trace regression test: a fig11-style Sturgeon run on the
//! flagship pair with a fixed seed, pinned against checked-in golden
//! metrics. Every layer of the stack — profiler, predictor, search,
//! balancer, simulated node — feeds these numbers, so any unintended
//! behaviour change anywhere shows up as a golden mismatch. If a change
//! is *intended*, re-run with `--nocapture`, copy the printed values and
//! update the goldens in the same commit.

use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

/// Pinned metrics of the golden run (seed 42, fast profiler seed 77,
/// memcached+raytrace, 160 s fluctuating load).
const GOLDEN_QOS_RATE: f64 = 0.999994449236;
const GOLDEN_MEAN_POWER_W: f64 = 73.277102288235;
const GOLDEN_MEAN_BE_TPUT: f64 = 0.642892802735;
const GOLDEN_PEAK_POWER_W: f64 = 76.439689453728;

fn golden_run() -> RunResult {
    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        42,
    );
    let profiler = ProfilerConfig {
        ls_samples_per_load: 160,
        ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
        be_samples: 1000,
        seed: 77,
    };
    let predictor = setup
        .train_predictor(profiler, PredictorConfig::default())
        .expect("training succeeds");
    let controller = SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::default(),
    );
    setup
        .runner()
        .controller(controller)
        .load(LoadProfile::paper_fluctuating(160.0))
        .intervals(160)
        .go()
        .unwrap()
}

#[test]
fn golden_trace_matches_pinned_metrics() {
    let r = golden_run();
    let mean_power = r.log.mean_power_w();
    println!(
        "golden candidates: qos_rate={:.12} mean_power_w={:.12} mean_be_tput={:.12} peak_power_w={:.12}",
        r.qos_rate, mean_power, r.mean_be_throughput, r.peak_power_w
    );
    assert!(
        (r.qos_rate - GOLDEN_QOS_RATE).abs() <= 1e-6,
        "qos_rate drifted: {:.12} vs golden {:.12}",
        r.qos_rate,
        GOLDEN_QOS_RATE
    );
    assert!(
        (mean_power - GOLDEN_MEAN_POWER_W).abs() <= 0.05,
        "mean power drifted: {:.6} W vs golden {:.6} W",
        mean_power,
        GOLDEN_MEAN_POWER_W
    );
    assert!(
        (r.mean_be_throughput - GOLDEN_MEAN_BE_TPUT).abs() <= 1e-3,
        "BE throughput drifted: {:.6} vs golden {:.6}",
        r.mean_be_throughput,
        GOLDEN_MEAN_BE_TPUT
    );
    assert!(
        (r.peak_power_w - GOLDEN_PEAK_POWER_W).abs() <= 0.05,
        "peak power drifted: {:.6} W vs golden {:.6} W",
        r.peak_power_w,
        GOLDEN_PEAK_POWER_W
    );
}

#[test]
fn golden_run_is_reproducible() {
    // The premise of pinning goldens at all: two identical runs agree
    // bit-for-bit.
    let a = golden_run();
    let b = golden_run();
    assert_eq!(a.qos_rate, b.qos_rate);
    assert_eq!(a.log.mean_power_w(), b.log.mean_power_w());
    assert_eq!(a.mean_be_throughput, b.mean_be_throughput);
    assert_eq!(a.peak_power_w, b.peak_power_w);
}
