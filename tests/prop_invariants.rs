//! Property-based tests (proptest) over the system's core invariants:
//! resource-partition validity, queueing-theory monotonicity, power-model
//! physics, balancer safety, and search correctness under arbitrary
//! (valid) inputs.

use proptest::prelude::*;
use std::sync::OnceLock;
use sturgeon::balancer::{BalancerParams, ResourceBalancer};
use sturgeon::prelude::*;
use sturgeon_simnode::power::PartitionLoad;
use sturgeon_workloads::catalog::{be_app, ls_service};
use sturgeon_workloads::env::Observation;
use sturgeon_workloads::queueing::MmcQueue;

fn spec() -> NodeSpec {
    NodeSpec::xeon_e5_2630_v4()
}

/// Strategy for a valid pair configuration on the paper's node.
fn valid_config() -> impl Strategy<Value = PairConfig> {
    (1u32..19, 0usize..10, 1u32..19, 0usize..10).prop_map(|(c1, f1, l1, f2)| {
        PairConfig::new(
            Allocation::new(c1, f1, l1),
            Allocation::new(20 - c1, f2, 20 - l1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_configs_always_validate(cfg in valid_config()) {
        prop_assert!(cfg.validate(&spec()).is_ok());
        prop_assert_eq!(cfg.ls.cores + cfg.be.cores, 20);
        prop_assert_eq!(cfg.ls.llc_ways + cfg.be.llc_ways, 20);
    }

    #[test]
    fn complement_be_partitions_exactly(
        c1 in 1u32..19,
        f1 in 0usize..10,
        l1 in 1u32..19,
        f2 in 0usize..10,
    ) {
        let s = spec();
        let cfg = PairConfig::complement_be(&s, Allocation::new(c1, f1, l1), f2)
            .expect("partial LS allocation leaves room");
        prop_assert_eq!(cfg.be.cores, 20 - c1);
        prop_assert_eq!(cfg.be.llc_ways, 20 - l1);
        prop_assert!(cfg.validate(&s).is_ok());
    }

    #[test]
    fn mmc_quantiles_are_ordered_and_finite_below_saturation(
        servers in 1u32..20,
        lambda in 1.0f64..50_000.0,
        mu in 100.0f64..10_000.0,
    ) {
        let q = MmcQueue { servers, arrival_rate: lambda, service_rate: mu };
        if !q.is_saturated() {
            let w50 = q.wait_quantile_s(0.50);
            let w95 = q.wait_quantile_s(0.95);
            let w99 = q.wait_quantile_s(0.99);
            prop_assert!(w50.is_finite() && w95.is_finite() && w99.is_finite());
            prop_assert!(w50 <= w95 + 1e-12);
            prop_assert!(w95 <= w99 + 1e-12);
            prop_assert!((0.0..=1.0).contains(&q.wait_probability()));
        }
    }

    #[test]
    fn ls_latency_monotone_in_load(
        cores in 1u32..20,
        level in 0usize..10,
        ways in 1u32..20,
        base in 1_000.0f64..20_000.0,
        bump in 100.0f64..5_000.0,
    ) {
        let ls = ls_service(LsServiceId::Memcached);
        let s = spec();
        let f = s.freq_ghz(level);
        let lo = ls.latency(cores, f, ways, base, 1.0);
        let hi = ls.latency(cores, f, ways, base + bump, 1.0);
        prop_assert!(hi.p95_ms >= lo.p95_ms - 1e-9,
            "latency fell with load: {} -> {}", lo.p95_ms, hi.p95_ms);
        prop_assert!(hi.in_target_fraction <= lo.in_target_fraction + 1e-9);
    }

    #[test]
    fn be_throughput_monotone_in_resources(
        cores in 1u32..19,
        level in 0usize..9,
        ways in 1u32..19,
    ) {
        let be = be_app(BeAppId::Facesim);
        let s = spec();
        let t = be.normalized_throughput(cores, s.freq_ghz(level), ways);
        prop_assert!(t <= be.normalized_throughput(cores + 1, s.freq_ghz(level), ways) + 1e-12);
        prop_assert!(t <= be.normalized_throughput(cores, s.freq_ghz(level + 1), ways) + 1e-12);
        prop_assert!(t <= be.normalized_throughput(cores, s.freq_ghz(level), ways + 1) + 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&t));
    }

    #[test]
    fn power_monotone_in_every_knob(
        cores in 1u32..20,
        f in 1.2f64..2.2,
        act in 0.1f64..1.2,
        util in 0.0f64..1.0,
    ) {
        let m = PowerModel::default();
        let base = m.partition_power_w(&PartitionLoad { cores, freq_ghz: f, activity: act, utilization: util });
        let more_cores = m.partition_power_w(&PartitionLoad { cores: cores + 1, freq_ghz: f, activity: act, utilization: util });
        let more_freq = m.partition_power_w(&PartitionLoad { cores, freq_ghz: f + 0.05, activity: act, utilization: util });
        let more_util = m.partition_power_w(&PartitionLoad { cores, freq_ghz: f, activity: act, utilization: (util + 0.05).min(1.0) });
        prop_assert!(more_cores >= base);
        prop_assert!(more_freq >= base);
        prop_assert!(more_util >= base - 1e-12);
        prop_assert!(base >= 0.0);
    }

    #[test]
    fn least_satisfying_matches_linear_scan(
        lo in 0u32..60,
        span in 0u32..40,
        threshold in 0u32..110,
    ) {
        // span == 0 covers lo == hi; thresholds beyond hi cover the
        // all-false predicate, threshold <= lo the all-true one.
        let hi = lo + span;
        let pred = |x: u32| x >= threshold;
        let expect = (lo..=hi).find(|&x| pred(x));
        prop_assert_eq!(sturgeon::search::least_satisfying(lo, hi, pred), expect);
    }

    #[test]
    fn greatest_satisfying_matches_linear_scan(
        lo in 0u32..60,
        span in 0u32..40,
        threshold in 0u32..110,
    ) {
        let hi = lo + span;
        let pred = |x: u32| x <= threshold;
        let expect = (lo..=hi).rev().find(|&x| pred(x));
        prop_assert_eq!(sturgeon::search::greatest_satisfying(lo, hi, pred), expect);
    }

    #[test]
    fn inverted_search_bounds_always_yield_none(
        lo in 1u32..100,
        drop in 1u32..50,
        threshold in 0u32..100,
    ) {
        // lo > hi is an empty range (lo ≥ 1 and drop ≥ 1 guarantee
        // hi < lo): both searches must return None without panicking.
        let hi = lo.saturating_sub(drop);
        prop_assert_eq!(sturgeon::search::least_satisfying(lo, hi, |x| x >= threshold), None);
        prop_assert_eq!(sturgeon::search::greatest_satisfying(lo, hi, |x| x <= threshold), None);
    }

    #[test]
    fn load_profiles_always_in_unit_range(
        t in 0.0f64..100_000.0,
        low in 0.0f64..1.0,
        high in 0.0f64..1.0,
        period in 1.0f64..5_000.0,
    ) {
        for p in [
            LoadProfile::Constant { fraction: high },
            LoadProfile::Ramp { from: low, to: high, duration_s: period },
            LoadProfile::Triangle { low, high, period_s: period },
            LoadProfile::Diurnal { low, high, day_s: period },
            LoadProfile::Step { before: low, after: high, at_s: period / 2.0 },
        ] {
            let f = p.fraction_at(t);
            prop_assert!((0.0..=1.0).contains(&f), "{p:?} at {t}: {f}");
        }
    }
}

/// Shared trained predictor for the expensive proptests below (training
/// once keeps the property suite fast).
fn shared_predictor() -> &'static (PerfPowerPredictor, ExperimentSetup) {
    static CELL: OnceLock<(PerfPowerPredictor, ExperimentSetup)> = OnceLock::new();
    CELL.get_or_init(|| {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
            2024,
        );
        // Full-size profiling: the power-safety property depends on the
        // production model quality, so test with the production recipe.
        let predictor = setup.train_default_predictor();
        (predictor, setup)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn search_output_always_valid_and_within_predicted_budget(frac in 0.1f64..0.8) {
        let (predictor, setup) = shared_predictor();
        let qps = frac * setup.peak_qps();
        let search = ConfigSearch::new(
            predictor,
            setup.spec().clone(),
            setup.budget_w(),
            SearchParams::default(),
        );
        let out = search.best_config(qps);
        if let Some(cfg) = out.best {
            prop_assert!(cfg.validate(setup.spec()).is_ok());
            // The search's contract: predicted power at the drift-headroom
            // load stays within budget (KNN power is not monotone in QPS,
            // so the raw-load prediction can wiggle slightly above).
            let guard = qps * (1.0 + SearchParams::default().power_load_headroom);
            prop_assert!(
                predictor.total_power_w(&cfg, setup.spec(), guard) <= setup.budget_w() + 1e-9
            );
            // And ground truth agrees within a small tolerance.
            let truth = setup.env().total_power(&cfg, qps);
            prop_assert!(
                truth <= 1.03 * setup.budget_w(),
                "truth {} vs budget {}", truth, setup.budget_w()
            );
            prop_assert!(out.predicted_throughput >= 0.0);
        }
    }

    #[test]
    fn balancer_output_always_valid(
        cfg in valid_config(),
        p95 in 0.5f64..40.0,
        frac in 0.1f64..0.7,
    ) {
        let (predictor, setup) = shared_predictor();
        let mut balancer = ResourceBalancer::new(BalancerParams::default());
        let obs = Observation {
            t_s: 1.0,
            qps: frac * setup.peak_qps(),
            p95_ms: p95,
            in_target_fraction: 0.9,
            ls_utilization: 0.8,
            power_w: setup.budget_w() - 10.0,
            be_throughput_norm: 0.5,
            be_ipc: 0.5,
            interference: 1.0,
        };
        if let Some(next) = balancer.adjust(
            predictor,
            setup.spec(),
            setup.budget_w(),
            &obs,
            setup.qos_target_ms(),
            cfg,
        ) {
            prop_assert!(next.validate(setup.spec()).is_ok(), "invalid {next}");
            // Partitions stay whole: total cores/ways conserved.
            prop_assert_eq!(next.ls.cores + next.be.cores, 20);
            prop_assert_eq!(next.ls.llc_ways + next.be.llc_ways, 20);
        }
    }

    #[test]
    fn balancer_invariants_hold_under_actuation_failures(
        cfg in valid_config(),
        p95s in prop::collection::vec(0.5f64..40.0, 4..16),
        installed_ok in prop::collection::vec(any::<bool>(), 4..16),
        reset_at in 0usize..16,
    ) {
        // An actuation failure means the balancer's proposal never lands:
        // the next round replays the *old* configuration. Conservation,
        // topology bounds and counter monotonicity must survive that.
        let (predictor, setup) = shared_predictor();
        let mut balancer = ResourceBalancer::new(BalancerParams::default());
        let mut current = cfg;
        let mut last_harvests = 0;
        let mut last_reverts = 0;
        for (i, p95) in p95s.iter().enumerate() {
            if i == reset_at {
                balancer.reset();
                // reset() clears epoch state, never the lifetime counters.
                prop_assert_eq!(balancer.harvest_count(), last_harvests);
                prop_assert_eq!(balancer.revert_count(), last_reverts);
            }
            let obs = Observation {
                t_s: i as f64 + 1.0,
                qps: 0.4 * setup.peak_qps(),
                p95_ms: *p95,
                in_target_fraction: 0.9,
                ls_utilization: 0.8,
                power_w: setup.budget_w() - 10.0,
                be_throughput_norm: 0.5,
                be_ipc: 0.5,
                interference: 1.0,
            };
            if let Some(next) = balancer.adjust(
                predictor,
                setup.spec(),
                setup.budget_w(),
                &obs,
                setup.qos_target_ms(),
                current,
            ) {
                prop_assert!(next.validate(setup.spec()).is_ok(), "invalid {next}");
                prop_assert_eq!(next.ls.cores + next.be.cores, 20);
                prop_assert_eq!(next.ls.llc_ways + next.be.llc_ways, 20);
                // Install only when the (injected) actuator cooperates.
                if installed_ok.get(i).copied().unwrap_or(true) {
                    current = next;
                }
            }
            // Lifetime counters are monotone regardless of install success.
            prop_assert!(balancer.harvest_count() >= last_harvests);
            prop_assert!(balancer.revert_count() >= last_reverts);
            last_harvests = balancer.harvest_count();
            last_reverts = balancer.revert_count();
        }
    }
}

/// Strategy for one interval's actuation fault.
fn actuation_fault() -> impl Strategy<Value = ActuationFault> {
    prop_oneof![
        Just(ActuationFault::None),
        Just(ActuationFault::Stuck),
        Just(ActuationFault::Transient),
        Just(ActuationFault::Partial),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn faulty_actuators_never_install_invalid_configs(
        steps in prop::collection::vec((actuation_fault(), valid_config(), any::<bool>()), 1..24),
    ) {
        // Whatever the fault sequence does — wedge, drop, or tear applies
        // in half — the *installed* configuration must stay a valid whole
        // partition of the node at every step.
        let s = spec();
        let mut a = FaultyActuators::new(sturgeon_simnode::SimActuators::new(s.clone()));
        for (fault, cfg, retry) in steps {
            a.begin_interval(fault);
            let first = a.apply(cfg);
            if first.is_err() && retry {
                let _ = a.apply(cfg);
            }
            let installed = a.config();
            prop_assert!(installed.validate(&s).is_ok(), "invalid install {installed}");
            prop_assert_eq!(installed.ls.cores + installed.be.cores, s.total_cores);
            prop_assert_eq!(installed.ls.llc_ways + installed.be.llc_ways, s.total_llc_ways);
        }
    }

    #[test]
    fn fault_injector_is_deterministic_per_seed(seed in any::<u64>(), n in 1usize..200) {
        let plan = FaultPlan::everything(seed);
        let mut a = plan.injector();
        let mut b = plan.injector();
        for i in 0..n {
            prop_assert_eq!(a.next_interval(), b.next_interval(), "interval {}", i);
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.stats().total(), b.stats().total());
    }

    #[test]
    fn zero_rate_plans_never_fire(seed in any::<u64>(), n in 1usize..200) {
        let plan = FaultPlan::none(seed);
        prop_assert!(plan.is_zero());
        let mut inj = plan.injector();
        for _ in 0..n {
            prop_assert!(inj.next_interval().is_none());
        }
        prop_assert_eq!(inj.stats().total(), 0);
    }
}
