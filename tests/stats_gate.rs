//! Regression-gate semantics: the `stats` comparison must pass on an
//! unmodified run, fail with a readable per-metric diff when a
//! determinism-pinned metric drifts, and stay quiet when wall-clock
//! timings jitter inside their tolerance band. These tests exercise the
//! gate library directly against the *committed* baselines so the CI
//! `regression-gate` job and this suite can never disagree about what
//! counts as a regression.

use serde_json::Value;
use sturgeon::scenario::gate::{compare, default_rules, parse_tolerance_overrides, Tolerance};

fn committed_smoke_baseline() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../baselines/smoke.json");
    let text = std::fs::read_to_string(path).expect("baselines/smoke.json is committed");
    serde_json::from_str(&text).expect("baseline parses")
}

/// Mutate `field` of the row whose "scenario" is `row_key`.
fn perturb(doc: &mut Value, row_key: &str, field: &str, f: impl Fn(f64) -> f64) {
    let Value::Array(rows) = doc else {
        panic!("baseline is a row array")
    };
    for row in rows.iter_mut() {
        let Value::Object(fields) = row else { continue };
        let is_target = fields
            .iter()
            .any(|(k, v)| k == "scenario" && v.as_str() == Some(row_key));
        if !is_target {
            continue;
        }
        for (k, v) in fields.iter_mut() {
            if k == field {
                let old = v.as_f64().expect("numeric field");
                *v = Value::Number(f(old));
                return;
            }
        }
        panic!("row {row_key} has no field {field}");
    }
    panic!("no row named {row_key}");
}

fn drop_row(doc: &mut Value, row_key: &str) {
    let Value::Array(rows) = doc else {
        panic!("baseline is a row array")
    };
    rows.retain(|row| {
        let Value::Object(fields) = row else {
            return true;
        };
        !fields
            .iter()
            .any(|(k, v)| k == "scenario" && v.as_str() == Some(row_key))
    });
}

#[test]
fn self_comparison_passes() {
    let baseline = committed_smoke_baseline();
    let report = compare(&baseline, &baseline, &default_rules(), false);
    assert!(
        report.passed(),
        "self-compare must pass:\n{}",
        report.table()
    );
    assert!(report.checks > 0);
}

#[test]
fn pinned_metric_drift_fails_with_named_violation() {
    let baseline = committed_smoke_baseline();
    let mut current = baseline.clone();
    perturb(&mut current, "smoke-node", "qos_rate", |q| q - 0.01);
    let report = compare(&baseline, &current, &default_rules(), false);
    assert!(!report.passed(), "1-point QoS drift must be a regression");
    let v = &report.violations[0];
    assert!(
        v.path.contains("smoke-node") && v.path.contains("qos_rate"),
        "violation names the row and metric: {}",
        v.path
    );
    // The diff table is the user-facing artifact; it must carry the
    // offending metric and both values.
    let table = report.table();
    assert!(table.contains("qos_rate"));
    assert!(table.contains("FAIL") || report.violations.len() == 1);
}

#[test]
fn exact_counters_tolerate_no_drift_at_all() {
    let baseline = committed_smoke_baseline();
    let mut current = baseline.clone();
    perturb(&mut current, "smoke-robustness", "retries", |r| r + 1.0);
    let report = compare(&baseline, &current, &default_rules(), false);
    assert!(!report.passed(), "retry-count drift must fail the gate");
    assert!(report.violations.iter().any(|v| v.path.contains("retries")));
}

#[test]
fn wall_clock_jitter_inside_band_is_ignored() {
    let baseline = committed_smoke_baseline();
    let mut current = baseline.clone();
    // 4x slower than baseline: inside the 16x ceiling band.
    perturb(&mut current, "smoke-fleet", "wall_s", |w| w * 4.0);
    let report = compare(&baseline, &current, &default_rules(), false);
    assert!(
        report.passed(),
        "wall-clock jitter inside the band must not gate:\n{}",
        report.table()
    );
}

#[test]
fn wall_clock_blowup_beyond_band_fails() {
    // Synthetic baseline with a wall time large enough that the +5 s
    // absolute slack (which exists so sub-second runs can't flake) is
    // not the deciding term.
    let baseline = serde_json::from_str(r#"[{"scenario": "t", "wall_s": 10.0}]"#).unwrap();
    let mut current = baseline.clone();
    perturb(&mut current, "t", "wall_s", |w| w * 100.0);
    let report = compare(&baseline, &current, &default_rules(), false);
    assert!(!report.passed(), "100x wall-clock blowup must gate");
    let slightly_slow: Value =
        serde_json::from_str(r#"[{"scenario": "t", "wall_s": 40.0}]"#).unwrap();
    let report = compare(&baseline, &slightly_slow, &default_rules(), false);
    assert!(
        report.passed(),
        "4x on a 10 s baseline stays inside the band"
    );
}

#[test]
fn throughput_floor_gates_slowdowns_not_speedups() {
    let baseline: Value =
        serde_json::from_str(r#"[{"scenario": "t", "node_intervals_per_s": 1000.0}]"#).unwrap();
    let faster: Value =
        serde_json::from_str(r#"[{"scenario": "t", "node_intervals_per_s": 90000.0}]"#).unwrap();
    let slower: Value =
        serde_json::from_str(r#"[{"scenario": "t", "node_intervals_per_s": 10.0}]"#).unwrap();
    let rules = default_rules();
    assert!(compare(&baseline, &faster, &rules, false).passed());
    assert!(!compare(&baseline, &slower, &rules, false).passed());
}

#[test]
fn missing_row_needs_subset_mode() {
    let baseline = committed_smoke_baseline();
    let mut current = baseline.clone();
    drop_row(&mut current, "smoke-fleet");
    let rules = default_rules();
    let strict = compare(&baseline, &current, &rules, false);
    assert!(!strict.passed(), "a vanished baseline row is a regression");
    let subset = compare(&baseline, &current, &rules, true);
    assert!(subset.passed(), "subset mode allows current ⊂ baseline");
    assert!(!subset.notes.is_empty(), "the skipped row is still noted");
}

#[test]
fn unknown_current_row_fails_even_in_subset_mode() {
    let baseline = committed_smoke_baseline();
    let mut current = baseline.clone();
    if let Value::Array(rows) = &mut current {
        rows.push(serde_json::from_str(r#"{"scenario": "rogue", "qos_rate": 1.0}"#).unwrap());
    }
    let report = compare(&baseline, &current, &default_rules(), true);
    assert!(
        !report.passed(),
        "an unbaselined row must force a re-baseline, not slip through"
    );
}

#[test]
fn tolerance_overrides_relax_named_metrics() {
    let baseline = committed_smoke_baseline();
    let mut current = baseline.clone();
    perturb(&mut current, "smoke-node", "qos_rate", |q| q - 0.01);
    let overrides = parse_tolerance_overrides(
        r#"
[tolerances]
qos_rate = { rel = 0.05 }
"#,
    )
    .expect("override file parses");
    let mut rules = overrides;
    rules.extend(default_rules());
    let report = compare(&baseline, &current, &rules, false);
    assert!(
        report.passed(),
        "an explicit 5% band on qos_rate accepts the 1-point drift:\n{}",
        report.table()
    );

    let ignore_all = parse_tolerance_overrides("[tolerances]\n\"*\" = \"ignore\"\n").unwrap();
    assert!(matches!(ignore_all[0].1, Tolerance::Ignore));
}

#[test]
fn committed_bench_snapshots_self_gate() {
    // The converted snapshot baselines (BENCH_search.json / BENCH_fleet.json)
    // must be valid gate inputs: self-comparison passes with row matching.
    for name in ["BENCH_search.json", "BENCH_fleet.json"] {
        let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
        let doc: Value = serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let report = compare(&doc, &doc, &default_rules(), false);
        assert!(report.passed(), "{name} self-gate:\n{}", report.table());
        assert!(report.checks > 0, "{name} produced no checks");
    }
}
