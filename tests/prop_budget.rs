//! Property-based tests over the budget-tree reclamation and placement
//! invariants: after any sequence of cap tighten/relax events and any
//! demand profile, every level's children sum to no more than their
//! parent's effective cap and no element exceeds its set cap; and the
//! scored placement engine never assigns or migrates a job onto a
//! safe-mode unit, no matter how the fleet snapshot looks.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use sturgeon::budget::{BudgetCap, BudgetLevel, BudgetTree};
use sturgeon::placement::{
    FleetView, PlacementAction, PlacementEngine, PlacementParams, ScoredPlacementEngine, UnitView,
};
use sturgeon::predictor::PerfPowerPredictor;
use sturgeon::prelude::*;
use sturgeon_simnode::NodeSpec;

// ---------------------------------------------------------------------
// Reclamation invariants.
// ---------------------------------------------------------------------

/// A random but valid tree geometry: `leaves` leaves split into `racks`
/// contiguous racks, racks split into `rows` rows.
fn geometry() -> impl Strategy<Value = (Vec<f64>, Vec<usize>, Vec<usize>)> {
    (1usize..10, 1usize..4, 1usize..3).prop_flat_map(|(leaves, racks, rows)| {
        let racks = racks.min(leaves);
        let rows = rows.min(racks);
        let caps = prop::collection::vec(50.0f64..400.0, leaves);
        caps.prop_map(move |caps| {
            let split = |n: usize, groups: usize| -> Vec<usize> {
                let base = n / groups;
                let extra = n % groups;
                (0..groups)
                    .map(|i| base + usize::from(i < extra))
                    .collect()
            };
            let rack_sizes = split(caps.len(), racks);
            let row_sizes = split(racks, rows);
            (caps, rack_sizes, row_sizes)
        })
    })
}

/// A random cap event: some level, some index (wrapped into range), a
/// tighten or relax expressed either in watts or as a nominal fraction.
fn cap_events() -> impl Strategy<Value = Vec<(u8, usize, bool, f64)>> {
    prop::collection::vec(
        (0u8..4, 0usize..16, any::<bool>(), 0.1f64..1.5),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reclamation_holds_tree_invariants(
        (caps, rack_sizes, row_sizes) in geometry(),
        events in cap_events(),
        demand_frac in prop::collection::vec(0.0f64..1.2, 1..10),
    ) {
        let mut tree = BudgetTree::new(&caps, &rack_sizes, &row_sizes).expect("valid geometry");
        let levels = [
            BudgetLevel::Node,
            BudgetLevel::Rack,
            BudgetLevel::Row,
            BudgetLevel::Datacenter,
        ];
        for (lvl, ix, as_fraction, amount) in events {
            let level = levels[lvl as usize];
            let index = ix % tree.len(level);
            let cap = if as_fraction {
                BudgetCap::FractionOfNominal(amount)
            } else {
                BudgetCap::Watts(amount * tree.nominal_cap_w(level, index))
            };
            tree.set_cap(level, index, cap).expect("in-range event");
            let demands: Vec<f64> = (0..tree.len(BudgetLevel::Node))
                .map(|i| {
                    let f = demand_frac[i % demand_frac.len()];
                    f * tree.nominal_cap_w(BudgetLevel::Node, i)
                })
                .collect();
            tree.reclaim(Some(&demands));
            if let Err(msg) = tree.check_invariants() {
                prop_assert!(false, "invariant violated after event: {msg}");
            }
            // Reclamation never *grants* beyond nominal.
            for i in 0..tree.len(BudgetLevel::Node) {
                let eff = tree.effective_cap_w(BudgetLevel::Node, i);
                let nominal = tree.nominal_cap_w(BudgetLevel::Node, i);
                prop_assert!(
                    eff <= nominal * (1.0 + 1e-9) + 1e-9,
                    "leaf {i}: effective {eff} W above nominal {nominal} W"
                );
            }
        }
        // Relaxing everything back to nominal restores full caps.
        for (ix, level) in levels.into_iter().enumerate() {
            for i in 0..tree.len(level) {
                tree.set_cap(level, i, BudgetCap::FractionOfNominal(1.0))
                    .expect("in-range");
            }
            let _ = ix;
        }
        tree.reclaim(None);
        for i in 0..tree.len(BudgetLevel::Node) {
            let eff = tree.effective_cap_w(BudgetLevel::Node, i);
            let nominal = tree.nominal_cap_w(BudgetLevel::Node, i);
            prop_assert!(
                (eff - nominal).abs() <= nominal * 1e-9 + 1e-9,
                "leaf {i}: relax did not restore nominal ({eff} vs {nominal})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Placement safety.
// ---------------------------------------------------------------------

/// One trained predictor shared across all proptest cases (training is
/// the expensive part; engine construction is free).
fn shared_artifacts() -> &'static (Arc<PerfPowerPredictor>, NodeSpec, f64) {
    static ARTIFACTS: OnceLock<(Arc<PerfPowerPredictor>, NodeSpec, f64)> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions),
            17,
        );
        let predictor = Arc::new(setup.train_default_predictor());
        let peak = setup.peak_qps();
        (predictor, setup.spec().clone(), peak)
    })
}

/// A random fleet snapshot: a handful of units with arbitrary health
/// flags, loads, caps and job counts, plus some queued jobs.
fn fleet_view() -> impl Strategy<Value = FleetView> {
    let unit = (
        any::<bool>(),  // safe_mode
        any::<bool>(),  // exhausted
        0u32..3,        // be_jobs
        0.1f64..0.9,    // load fraction of peak
        40.0f64..120.0, // cap_w
    );
    (prop::collection::vec(unit, 2..5), 0u32..3).prop_map(|(units, queued)| {
        let (_, _, peak) = shared_artifacts();
        FleetView {
            t_s: 30.0,
            be: BeAppId::Swaptions,
            units: units
                .into_iter()
                .enumerate()
                .map(|(i, (safe_mode, exhausted, be_jobs, frac, cap_w))| UnitView {
                    unit: i,
                    first_node: i,
                    nodes: 1,
                    qps_per_node: frac * peak,
                    cap_w,
                    safe_mode,
                    exhausted,
                    be_jobs,
                    be_slots: 2,
                    last_be_tput: 0.5,
                })
                .collect(),
            queued_jobs: queued,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn migration_never_targets_a_safe_mode_unit(view in fleet_view()) {
        let (predictor, spec, _) = shared_artifacts();
        let mut engine = ScoredPlacementEngine::new(
            Arc::clone(predictor),
            spec.clone(),
            SearchParams::default(),
            PlacementParams::default(),
        );
        let plan = engine.plan(&view);
        let mut jobs: Vec<u32> = view.units.iter().map(|u| u.be_jobs).collect();
        let mut queued = view.queued_jobs;
        for action in &plan.actions {
            match *action {
                PlacementAction::Assign { unit, .. } => {
                    prop_assert!(
                        !view.units[unit].safe_mode,
                        "assigned a job to safe-mode unit {unit}"
                    );
                    prop_assert!(queued > 0, "assign without a queued job");
                    prop_assert!(jobs[unit] < view.units[unit].be_slots);
                    queued -= 1;
                    jobs[unit] += 1;
                }
                PlacementAction::Migrate { from, to, .. } => {
                    prop_assert!(
                        !view.units[to].safe_mode,
                        "migrated a job onto safe-mode unit {to}"
                    );
                    prop_assert!(from != to, "self-migration");
                    prop_assert!(jobs[from] > 0, "migration from an empty unit");
                    prop_assert!(jobs[to] < view.units[to].be_slots);
                    jobs[from] -= 1;
                    jobs[to] += 1;
                }
                PlacementAction::Evict { unit, .. } => {
                    prop_assert!(jobs[unit] > 0, "eviction from an empty unit");
                    jobs[unit] -= 1;
                    queued += 1;
                }
            }
        }
        // Jobs are conserved: every plan only moves them around.
        let before: u32 = view.units.iter().map(|u| u.be_jobs).sum::<u32>() + view.queued_jobs;
        let after: u32 = jobs.iter().sum::<u32>() + queued;
        prop_assert_eq!(before, after, "plan created or destroyed jobs");
        prop_assert!(plan.actions.len() <= PlacementParams::default().max_moves);
    }
}
