//! Integration tests spanning the controller stack: profiling → training →
//! search → balancer → actuation against the simulated node, end to end.

use sturgeon::baselines::{PartiesController, PartiesParams, StaticReservationController};
use sturgeon::controller::ResourceController;
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

/// Reduced-size profiling so integration tests stay fast while covering
/// the full load range.
fn fast_profiler() -> ProfilerConfig {
    ProfilerConfig {
        ls_samples_per_load: 160,
        ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
        be_samples: 1000,
        seed: 77,
    }
}

fn sturgeon_for(setup: &ExperimentSetup, balancer: bool) -> SturgeonController {
    let predictor = setup
        .train_predictor(fast_profiler(), PredictorConfig::default())
        .expect("training succeeds");
    SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams {
            balancer_enabled: balancer,
            ..ControllerParams::default()
        },
    )
}

#[test]
fn sturgeon_guarantees_qos_on_fluctuating_load() {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 5);
    // Full-size profiling: the power-safety claim depends on model quality.
    let predictor = setup.train_default_predictor();
    let controller = SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::default(),
    );
    let r = setup
        .runner()
        .controller(controller)
        .load(LoadProfile::paper_fluctuating(240.0))
        .intervals(240)
        .go()
        .unwrap();
    assert!(r.qos_rate >= 0.95, "QoS rate {}", r.qos_rate);
    assert!(
        !r.suffers_overload(),
        "overload fraction {}",
        r.overload_fraction
    );
    assert!(
        r.mean_be_throughput > 0.3,
        "throughput {}",
        r.mean_be_throughput
    );
}

#[test]
fn sturgeon_respects_power_budget_on_every_pair_sampled() {
    // A cross-section of LS×BE pairs; the full 18-pair sweep lives in the
    // fig9/fig10 report binaries.
    for (ls, be) in [
        (LsServiceId::Memcached, BeAppId::Blackscholes),
        (LsServiceId::Xapian, BeAppId::Fluidanimate),
        (LsServiceId::ImgDnn, BeAppId::Ferret),
    ] {
        let setup = ExperimentSetup::new(ColocationPair::new(ls, be), 8);
        let r = setup
            .runner()
            .controller(sturgeon_for(&setup, true))
            .load(LoadProfile::paper_fluctuating(200.0))
            .intervals(200)
            .go()
            .unwrap();
        assert!(
            !r.suffers_overload(),
            "{}: overload fraction {}",
            r.pair,
            r.overload_fraction
        );
    }
}

#[test]
fn balancer_ablation_degrades_qos() {
    // §VII-C: disabling the balancer must hurt QoS on an
    // interference-heavy pair while (slightly) raising BE throughput.
    let pair = ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Fluidanimate);
    let setup = ExperimentSetup::new(pair, 11);
    let load = LoadProfile::paper_fluctuating(300.0);
    let with = setup
        .runner()
        .controller(sturgeon_for(&setup, true))
        .load(load.clone())
        .intervals(300)
        .go()
        .unwrap();
    let without = setup
        .runner()
        .controller(sturgeon_for(&setup, false))
        .load(load)
        .intervals(300)
        .go()
        .unwrap();
    assert!(
        with.qos_rate > without.qos_rate,
        "balancer did not help: {} vs {}",
        with.qos_rate,
        without.qos_rate
    );
    assert!(
        without.mean_be_throughput >= with.mean_be_throughput,
        "NoB throughput should not be lower"
    );
}

#[test]
fn sturgeon_beats_parties_on_throughput_with_qos_held() {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Ferret);
    let setup = ExperimentSetup::new(pair, 13);
    let load = LoadProfile::paper_fluctuating(300.0);
    let sturgeon = setup
        .runner()
        .controller(sturgeon_for(&setup, true))
        .load(load.clone())
        .intervals(300)
        .go()
        .unwrap();
    let parties = setup
        .runner()
        .controller(PartiesController::new(
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            PartiesParams::default(),
        ))
        .load(load)
        .intervals(300)
        .go()
        .unwrap();
    assert!(sturgeon.qos_rate >= 0.95);
    assert!(parties.qos_rate >= 0.93);
    assert!(
        sturgeon.mean_be_throughput > parties.mean_be_throughput,
        "Sturgeon {} vs PARTIES {}",
        sturgeon.mean_be_throughput,
        parties.mean_be_throughput
    );
}

#[test]
fn controller_tracks_step_load_change() {
    let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions);
    let setup = ExperimentSetup::new(pair, 17);
    let r = setup
        .runner()
        .controller(sturgeon_for(&setup, true))
        .load(LoadProfile::Step {
            before: 0.2,
            after: 0.7,
            at_s: 100.0,
        })
        .intervals(200)
        .go()
        .unwrap();
    // After the step the controller must re-provision: the LS compute
    // capacity (cores × frequency) in the final interval must exceed the
    // pre-step capacity.
    let samples = r.log.samples();
    let before = samples[90].config;
    let after = samples[199].config;
    let weight = |c: sturgeon_simnode::PairConfig| {
        c.ls.cores as f64 * (1.2 + 0.111 * c.ls.freq_level as f64)
    };
    assert!(
        weight(after) > weight(before),
        "no re-provisioning: {before} -> {after}"
    );
    assert!(r.qos_rate > 0.9, "QoS rate {}", r.qos_rate);
}

#[test]
fn static_reservation_is_safe_but_wasteful() {
    let pair = ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 19);
    let r = setup
        .runner()
        .controller(StaticReservationController)
        .load(LoadProfile::paper_fluctuating(120.0))
        .intervals(120)
        .go()
        .unwrap();
    assert!(r.qos_rate > 0.99);
    assert!(r.mean_be_throughput < 0.05);
}

#[test]
fn every_decision_is_a_valid_partition() {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Facesim);
    let setup = ExperimentSetup::new(pair, 23);
    let mut controller = sturgeon_for(&setup, true);
    let mut env = setup.env().clone();
    let mut config = controller.initial_config(setup.spec());
    for t in 0..250 {
        let frac = 0.2 + 0.6 * ((t as f64 / 60.0).sin().abs());
        let obs = env.step(&config, frac * setup.peak_qps());
        config = controller.decide(&obs, config);
        assert!(
            config.validate(setup.spec()).is_ok(),
            "invalid config at t={t}: {config}"
        );
    }
}

#[test]
fn search_stats_exposed_after_runs() {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Swaptions);
    let setup = ExperimentSetup::new(pair, 29);
    let mut controller = sturgeon_for(&setup, true);
    let mut env = setup.env().clone();
    let mut config = controller.initial_config(setup.spec());
    let obs = env.step(&config, 12_000.0);
    config = controller.decide(&obs, config);
    let _ = config;
    let stats = controller.last_search_stats().expect("a search ran");
    assert!(stats.model_calls > 0);
    assert!(
        stats.model_calls < 5_000,
        "search too expensive: {}",
        stats.model_calls
    );
    assert!(controller.search_count() >= 1);
}

#[test]
fn parties_reacts_to_measured_overload() {
    // Drive PARTIES through the harness and confirm its reactive power
    // handling engages on at least one pair known to flirt with the
    // budget.
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Swaptions);
    let setup = ExperimentSetup::new(pair, 31);
    let r = setup
        .runner()
        .controller(PartiesController::new(
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            PartiesParams::default(),
        ))
        .load(LoadProfile::paper_fluctuating(300.0))
        .intervals(300)
        .go()
        .unwrap();
    // Reactive control may transiently overload but must never run away.
    assert!(
        r.peak_power_w < 1.10 * r.budget_w,
        "PARTIES power ran away: {} vs budget {}",
        r.peak_power_w,
        r.budget_w
    );
    assert!(r.qos_rate > 0.9);
}

#[test]
fn online_adaptation_variant_runs_and_holds_qos() {
    use sturgeon::online::{OnlineAdaptor, OnlineAdaptorConfig};

    let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Fluidanimate);
    let setup = ExperimentSetup::new(pair, 37);
    let datasets = setup
        .profile(ProfilerConfig::default())
        .expect("profiling succeeds");
    let predictor = sturgeon::predictor::PerfPowerPredictor::train(
        &datasets,
        PredictorConfig::default(),
        setup.env().static_power_w(),
        setup.env().be().params.input_level as f64,
        setup.qos_target_ms(),
    )
    .expect("training succeeds");
    let adaptor = OnlineAdaptor::new(
        datasets.ls_latency.clone(),
        setup.qos_target_ms(),
        OnlineAdaptorConfig::default(),
    )
    .expect("adaptor builds");
    let controller = SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::default(),
    )
    .with_adaptation(adaptor);

    let r = setup
        .runner()
        .controller(controller)
        .load(LoadProfile::paper_fluctuating(300.0))
        .intervals(300)
        .go()
        .unwrap();
    assert!(r.qos_rate > 0.93, "Sturgeon-OA QoS {}", r.qos_rate);
    assert!(!r.suffers_overload());
    assert!(r.mean_be_throughput > 0.3);
}
