//! Property-based tests over the extension modules: multi-application
//! configurations, resctrl/cpuset rendering, hardware counters, energy
//! accounting, and the trace load profile.

use proptest::prelude::*;
use sturgeon_simnode::audit::{cpuset_lists, resctrl_schemata};
use sturgeon_simnode::{Allocation, EnergyMeter, NodeSpec, PairConfig};
use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
use sturgeon_workloads::counters::{be_counters, ls_counters};
use sturgeon_workloads::loadgen::LoadProfile;
use sturgeon_workloads::multienv::MultiConfig;

fn spec() -> NodeSpec {
    NodeSpec::xeon_e5_2630_v4()
}

/// Strategy for a valid pair configuration.
fn valid_pair() -> impl Strategy<Value = PairConfig> {
    (1u32..19, 0usize..10, 1u32..19, 0usize..10).prop_map(|(c1, f1, l1, f2)| {
        PairConfig::new(
            Allocation::new(c1, f1, l1),
            Allocation::new(20 - c1, f2, 20 - l1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resctrl_masks_are_disjoint_with_correct_popcounts(cfg in valid_pair()) {
        let s = spec();
        let (ls_line, be_line) = resctrl_schemata(&s, &cfg);
        let parse = |line: &str| {
            u64::from_str_radix(line.strip_prefix("L3:0=").expect("prefix"), 16).expect("hex")
        };
        let ls_mask = parse(&ls_line);
        let be_mask = parse(&be_line);
        prop_assert_eq!(ls_mask & be_mask, 0, "overlapping CAT masks");
        prop_assert_eq!(ls_mask.count_ones(), cfg.ls.llc_ways);
        prop_assert_eq!(be_mask.count_ones(), cfg.be.llc_ways);
        // Both masks fit in the node's way universe.
        let universe = (1u64 << s.total_llc_ways) - 1;
        prop_assert_eq!(ls_mask & !universe, 0);
        prop_assert_eq!(be_mask & !universe, 0);
    }

    #[test]
    fn cpuset_lists_cover_all_cores_without_overlap(cfg in valid_pair()) {
        let (ls, be) = cpuset_lists(&cfg);
        let expand = |s: &str| -> Vec<u32> {
            if s.is_empty() {
                return vec![];
            }
            match s.split_once('-') {
                Some((a, b)) => (a.parse().unwrap()..=b.parse().unwrap()).collect(),
                None => vec![s.parse().unwrap()],
            }
        };
        let ls_cores = expand(&ls);
        let be_cores = expand(&be);
        prop_assert_eq!(ls_cores.len() as u32, cfg.ls.cores);
        prop_assert_eq!(be_cores.len() as u32, cfg.be.cores);
        let mut all = ls_cores;
        all.extend(&be_cores);
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len() as u32, cfg.ls.cores + cfg.be.cores, "overlap");
        prop_assert!(all.iter().all(|&c| c < 20));
    }

    #[test]
    fn multi_config_validation_matches_sum_rule(
        c in proptest::collection::vec(1u32..8, 2..5),
        w in proptest::collection::vec(1u32..8, 2..5),
    ) {
        let s = spec();
        let n = c.len().min(w.len());
        let allocs: Vec<Allocation> = (0..n)
            .map(|i| Allocation::new(c[i], 5, w[i]))
            .collect();
        let (ls, be) = allocs.split_at(n / 2 + 1);
        if be.is_empty() {
            return Ok(());
        }
        let cfg = MultiConfig {
            ls: ls.to_vec(),
            be: be.to_vec(),
        };
        let fits = cfg.total_cores() <= s.total_cores && cfg.total_ways() <= s.total_llc_ways;
        prop_assert_eq!(cfg.validate(&s).is_ok(), fits);
    }

    #[test]
    fn counters_always_consistent(
        cores in 1u32..20,
        level in 0usize..10,
        ways in 1u32..20,
        frac in 0.05f64..0.95,
    ) {
        let s = spec();
        let be = be_app(BeAppId::Facesim);
        let alloc = Allocation::new(cores, level, ways);
        let c = be_counters(&s, &be, &alloc);
        prop_assert!(c.llc_misses <= c.llc_references);
        prop_assert!(c.instructions <= 4 * c.cycles, "IPC {}", c.ipc());
        prop_assert!((0.0..=1.0).contains(&c.llc_miss_ratio()));

        let ls = ls_service(LsServiceId::Xapian);
        let q = frac * ls.params.peak_qps;
        let c = ls_counters(&s, &ls, &alloc, q);
        prop_assert!(c.llc_misses <= c.llc_references);
        prop_assert!(c.instructions <= 4 * c.cycles.max(1));
    }

    #[test]
    fn energy_meter_wrap_recovery_is_exact(
        powers in proptest::collection::vec(1.0f64..200.0, 1..40),
    ) {
        // Wrap must exceed any single step (the differencing convention
        // can only recover one wrap per read pair), yet be small enough
        // that multi-step sequences cross it repeatedly.
        let mut m = EnergyMeter::with_wrap(250_000_000); // 250 J
        let mut prev = m.energy_uj();
        for &p in &powers {
            m.accumulate(p, 1.0);
            let now = m.energy_uj();
            let recovered = m.power_from_counters(prev, now, 1.0);
            // Exact up to µJ rounding.
            prop_assert!((recovered - p).abs() < 1e-3, "p={p} recovered={recovered}");
            prev = now;
        }
        let total: f64 = powers.iter().sum();
        prop_assert!((m.total_joules() - total).abs() < 1e-3 * powers.len() as f64);
    }

    #[test]
    fn trace_profile_stays_within_sample_hull(
        samples in proptest::collection::vec(0.0f64..1.0, 2..30),
        t in 0.0f64..5_000.0,
        dt in 0.5f64..120.0,
    ) {
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(0.0f64, f64::max);
        let p = LoadProfile::Trace { samples, dt_s: dt };
        let f = p.fraction_at(t);
        prop_assert!(f >= lo - 1e-12 && f <= hi + 1e-12, "{f} outside [{lo}, {hi}]");
    }
}
